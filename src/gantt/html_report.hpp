// Self-contained HTML schedule report.
//
// One file, zero external assets: the SVG power-aware Gantt chart, the
// headline power metrics, the exact Ec(Pmin) sensitivity curve, the energy
// breakdown by resource, and the hard-constraint verdict. This is the
// artifact a designer attaches to a review — the batch-mode stand-in for
// the IMPACCT GUI.
#pragma once

#include <string>

#include "sched/schedule.hpp"
#include "validate/validator.hpp"

namespace paws {

struct HtmlReportOptions {
  std::string title;  ///< defaults to the problem name
};

/// Renders the complete report document.
std::string renderHtmlReport(const Schedule& schedule,
                             const HtmlReportOptions& options = {});

}  // namespace paws
