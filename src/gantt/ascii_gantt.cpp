#include "gantt/ascii_gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "base/check.hpp"

namespace paws {

namespace {

std::size_t columnOf(Time t, std::int64_t ticksPerColumn) {
  return static_cast<std::size_t>(t.ticks() / ticksPerColumn);
}

/// Widest resource name, for row label alignment.
std::size_t labelWidth(const Problem& p) {
  std::size_t w = 5;  // at least "power"
  for (ResourceId r : p.resourceIds()) {
    w = std::max(w, p.resource(r).name.size());
  }
  return w;
}

void appendAxis(std::ostringstream& os, std::size_t label, std::size_t cols,
                std::int64_t ticksPerColumn) {
  os << std::string(label, ' ') << " +";
  for (std::size_t c = 0; c < cols; ++c) {
    os << ((c % 10 == 0) ? '|' : '-');
  }
  os << "\n" << std::string(label, ' ') << "  ";
  for (std::size_t c = 0; c < cols; ++c) {
    if (c % 10 == 0) {
      const std::string mark = std::to_string(
          static_cast<long long>(c) * ticksPerColumn);
      os << mark;
      c += mark.size() - 1;
    } else {
      os << ' ';
    }
  }
  os << "\n";
}

}  // namespace

std::string renderTimeView(const Schedule& schedule,
                           const AsciiGanttOptions& options) {
  PAWS_CHECK(options.ticksPerColumn >= 1);
  const Problem& p = schedule.problem();
  const std::size_t cols =
      columnOf(schedule.finish(), options.ticksPerColumn) + 1;
  const std::size_t label = labelWidth(p);

  std::ostringstream os;
  os << "time view (1 col = " << options.ticksPerColumn << " tick"
     << (options.ticksPerColumn == 1 ? "" : "s") << ")\n";

  for (ResourceId r : p.resourceIds()) {
    std::string row(cols, '.');
    for (TaskId v : p.taskIds()) {
      const Task& task = p.task(v);
      if (task.resource != r) continue;
      const std::size_t from = columnOf(schedule.start(v),
                                        options.ticksPerColumn);
      std::size_t to = columnOf(schedule.end(v) - Duration(1),
                                options.ticksPerColumn);
      to = std::min(to, cols - 1);
      for (std::size_t c = from; c <= to; ++c) row[c] = '-';
      if (from <= to) row[from] = '[';
      if (to > from) row[to] = ']';
      // Slack annotation: '~' columns the bin could slip into.
      if (v.index() < options.slacks.size()) {
        const Duration slack = options.slacks[v.index()];
        if (slack > Duration::zero() && slack != Duration::max()) {
          const std::size_t slackCols = static_cast<std::size_t>(
              slack.ticks() / options.ticksPerColumn);
          for (std::size_t k = 1; k <= slackCols && to + k < cols; ++k) {
            if (row[to + k] == '.') row[to + k] = '~';
          }
        }
      }
      // Inline the task name (truncated to the bin interior).
      for (std::size_t k = 0;
           k < task.name.size() && from + 1 + k < to; ++k) {
        row[from + 1 + k] = task.name[k];
      }
      if (to == from && !task.name.empty()) row[from] = task.name[0];
    }
    os << p.resource(r).name
       << std::string(label - p.resource(r).name.size(), ' ') << " |" << row
       << "\n";
  }
  appendAxis(os, label, cols, options.ticksPerColumn);
  return os.str();
}

std::string renderPowerView(const Schedule& schedule,
                            const AsciiGanttOptions& options) {
  PAWS_CHECK(options.ticksPerColumn >= 1);
  PAWS_CHECK(options.wattsPerRow > Watts::zero());
  const Problem& p = schedule.problem();
  const PowerProfile& profile = schedule.powerProfile();
  const std::size_t cols =
      columnOf(schedule.finish(), options.ticksPerColumn) + 1;
  const std::size_t label = labelWidth(p);

  auto rowOf = [&](Watts w) -> std::int64_t {
    // Row r covers ((r-1)*wattsPerRow, r*wattsPerRow]; a column reaches row
    // r when its power exceeds (r-1)*wattsPerRow.
    const std::int64_t unit = options.wattsPerRow.milliwatts();
    return (w.milliwatts() + unit - 1) / unit;
  };

  const Watts top = std::max(
      {profile.peak(),
       p.maxPower() == Watts::max() ? Watts::zero() : p.maxPower(),
       p.minPower()});
  const std::int64_t rows = std::max<std::int64_t>(rowOf(top), 1);
  const std::int64_t pmaxRow =
      p.maxPower() == Watts::max() ? -1 : rowOf(p.maxPower());
  const std::int64_t pminRow =
      p.minPower() > Watts::zero() ? rowOf(p.minPower()) : -1;

  // Column heights from the profile, sampled at column start. Spikes are
  // detected on the exact power values, not the quantized rows, so even a
  // violation smaller than one row is marked.
  std::vector<std::int64_t> height(cols, 0);
  std::vector<bool> spiky(cols, false);
  for (std::size_t c = 0; c < cols; ++c) {
    const Time t(static_cast<std::int64_t>(c) * options.ticksPerColumn);
    const Watts value = profile.valueAt(t);
    height[c] = rowOf(value);
    spiky[c] = p.maxPower() != Watts::max() && value > p.maxPower();
  }

  std::ostringstream os;
  os << "power view (1 row = " << options.wattsPerRow << ")";
  if (options.annotateLimits) {
    if (pmaxRow >= 0) os << "  Pmax=" << p.maxPower();
    if (pminRow >= 0) os << "  Pmin=" << p.minPower();
  }
  os << "\n";

  for (std::int64_t r = rows; r >= 1; --r) {
    std::string row(cols, ' ');
    for (std::size_t c = 0; c < cols; ++c) {
      if (height[c] >= r) {
        row[c] = spiky[c] ? '!' : '#';
      }
    }
    char edge = '|';
    std::string tag(label, ' ');
    if (options.annotateLimits && r == pmaxRow) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (row[c] == ' ') row[c] = '=';
      }
      tag.replace(0, std::min<std::size_t>(4, label), "Pmax");
    } else if (options.annotateLimits && r == pminRow) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (row[c] == ' ') row[c] = '-';
      }
      tag.replace(0, std::min<std::size_t>(4, label), "Pmin");
    }
    os << tag << " " << edge << row << "\n";
  }
  appendAxis(os, label, cols, options.ticksPerColumn);
  return os.str();
}

std::string renderGantt(const Schedule& schedule,
                        const AsciiGanttOptions& options) {
  return renderTimeView(schedule, options) + "\n" +
         renderPowerView(schedule, options);
}

}  // namespace paws
