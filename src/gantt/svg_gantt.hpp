// SVG power-aware Gantt chart — the publication-quality rendering of the
// same two views as ascii_gantt.hpp: task bins per resource row (bin height
// scaled to power so area = energy, exactly as Section 4.3 describes) above
// the stepped power profile with Pmax/Pmin annotation lines.
#pragma once

#include <string>

#include "sched/schedule.hpp"

namespace paws {

struct SvgGanttOptions {
  double pixelsPerTick = 12.0;
  double pixelsPerWatt = 6.0;
  /// Vertical gap between resource rows in the time view.
  double rowGap = 14.0;
  /// Chart margin in pixels.
  double margin = 40.0;
};

/// Renders the complete chart as a standalone SVG document.
std::string renderSvgGantt(const Schedule& schedule,
                           const SvgGanttOptions& options = {});

}  // namespace paws
