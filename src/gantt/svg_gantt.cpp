#include "gantt/svg_gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "base/check.hpp"

namespace paws {

namespace {

const char* kPalette[] = {"#4c78a8", "#f58518", "#54a24b", "#e45756",
                          "#72b7b2", "#b279a2", "#eeca3b", "#9d755d"};

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string renderSvgGantt(const Schedule& schedule,
                           const SvgGanttOptions& opt) {
  PAWS_CHECK(opt.pixelsPerTick > 0 && opt.pixelsPerWatt > 0);
  const Problem& p = schedule.problem();
  const PowerProfile& profile = schedule.powerProfile();

  const double width =
      opt.margin * 2 +
      static_cast<double>(schedule.finish().ticks()) * opt.pixelsPerTick;

  // Time view: each resource row is as tall as its most power-hungry task.
  std::vector<double> rowHeight(p.numResources(), 10.0);
  for (TaskId v : p.taskIds()) {
    const Task& t = p.task(v);
    rowHeight[t.resource.index()] =
        std::max(rowHeight[t.resource.index()], t.power.watts() * opt.pixelsPerWatt);
  }
  double timeViewHeight = 0;
  std::vector<double> rowTop(p.numResources(), 0.0);
  for (std::size_t r = 0; r < p.numResources(); ++r) {
    rowTop[r] = timeViewHeight;
    timeViewHeight += rowHeight[r] + opt.rowGap;
  }

  const Watts topPower =
      std::max({profile.peak(),
                p.maxPower() == Watts::max() ? Watts::zero() : p.maxPower(),
                p.minPower()});
  const double powerViewHeight = topPower.watts() * opt.pixelsPerWatt + 10;
  const double powerTop = opt.margin + timeViewHeight + 30;
  const double powerBase = powerTop + powerViewHeight;
  const double height = powerBase + opt.margin;

  auto x = [&](Time t) {
    return opt.margin + static_cast<double>(t.ticks()) * opt.pixelsPerTick;
  };
  auto py = [&](Watts w) { return powerBase - w.watts() * opt.pixelsPerWatt; };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" font-family=\"sans-serif\" "
     << "font-size=\"10\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // --- time view ---
  for (std::size_t r = 0; r < p.numResources(); ++r) {
    const double y = opt.margin + rowTop[r];
    os << "<text x=\"4\" y=\"" << y + rowHeight[r] / 2
       << "\" dominant-baseline=\"middle\">"
       << escape(p.resource(ResourceId(static_cast<std::uint32_t>(r))).name
                     .empty()
                     ? "res"
                     : p.resource(ResourceId(static_cast<std::uint32_t>(r)))
                           .name)
       << "</text>\n";
    os << "<line x1=\"" << opt.margin << "\" y1=\"" << y + rowHeight[r]
       << "\" x2=\"" << width - opt.margin << "\" y2=\"" << y + rowHeight[r]
       << "\" stroke=\"#ddd\"/>\n";
  }
  for (TaskId v : p.taskIds()) {
    const Task& t = p.task(v);
    const std::size_t r = t.resource.index();
    const double h = t.power.watts() * opt.pixelsPerWatt;
    const double y = opt.margin + rowTop[r] + (rowHeight[r] - h);
    const double bx = x(schedule.start(v));
    const double bw = static_cast<double>(t.delay.ticks()) * opt.pixelsPerTick;
    os << "<rect x=\"" << bx << "\" y=\"" << y << "\" width=\"" << bw
       << "\" height=\"" << h << "\" fill=\""
       << kPalette[v.index() % (sizeof(kPalette) / sizeof(kPalette[0]))]
       << "\" fill-opacity=\"0.8\" stroke=\"#333\"/>\n";
    os << "<text x=\"" << bx + 3 << "\" y=\"" << y + h / 2
       << "\" dominant-baseline=\"middle\" fill=\"white\">" << escape(t.name)
       << "</text>\n";
  }

  // --- power view: stepped profile polygon ---
  os << "<text x=\"4\" y=\"" << powerTop - 8 << "\">power profile</text>\n";
  std::ostringstream points;
  points << x(Time::zero()) << ',' << powerBase << ' ';
  for (const PowerSegment& s : profile.segments()) {
    points << x(s.interval.begin()) << ',' << py(s.power) << ' ';
    points << x(s.interval.end()) << ',' << py(s.power) << ' ';
  }
  points << x(schedule.finish()) << ',' << powerBase;
  os << "<polygon points=\"" << points.str()
     << "\" fill=\"#9ecae1\" fill-opacity=\"0.6\" stroke=\"#3182bd\"/>\n";

  auto limitLine = [&](Watts w, const char* color, const char* name) {
    os << "<line x1=\"" << opt.margin << "\" y1=\"" << py(w) << "\" x2=\""
       << width - opt.margin << "\" y2=\"" << py(w) << "\" stroke=\"" << color
       << "\" stroke-dasharray=\"6,3\"/>\n";
    os << "<text x=\"" << width - opt.margin + 2 << "\" y=\"" << py(w)
       << "\" dominant-baseline=\"middle\" fill=\"" << color << "\">" << name
       << "</text>\n";
  };
  if (p.maxPower() != Watts::max()) limitLine(p.maxPower(), "#d62728", "Pmax");
  if (p.minPower() > Watts::zero()) limitLine(p.minPower(), "#2ca02c", "Pmin");

  // Time axis.
  os << "<line x1=\"" << opt.margin << "\" y1=\"" << powerBase << "\" x2=\""
     << width - opt.margin << "\" y2=\"" << powerBase
     << "\" stroke=\"#333\"/>\n";
  for (std::int64_t t = 0; t <= schedule.finish().ticks();
       t += std::max<std::int64_t>(1, schedule.finish().ticks() / 15)) {
    os << "<text x=\"" << x(Time(t)) << "\" y=\"" << powerBase + 12
       << "\" text-anchor=\"middle\">" << t << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace paws
