// ASCII power-aware Gantt chart (Section 4.3).
//
// Renders a schedule in the paper's two coordinated views:
//   * time view  — one row per execution resource, each task drawn as a
//     bin [name---] spanning its activity window;
//   * power view — the power profile P(t) as a bar chart over the same
//     time axis, annotated with the Pmax budget line ('=' row) and the
//     Pmin floor line ('-' row); columns above Pmax mark power spikes,
//     columns below Pmin reveal power gaps.
//
// The renderer is deterministic and plain-ASCII so test expectations and
// terminal output stay stable.
#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"

namespace paws {

struct AsciiGanttOptions {
  /// Ticks represented by one character column (>= 1).
  std::int64_t ticksPerColumn = 1;
  /// Watts represented by one row of the power view (> 0).
  Watts wattsPerRow = Watts::fromWatts(2.0);
  /// Draw the Pmax / Pmin annotation lines.
  bool annotateLimits = true;
  /// Slack per vertex (from sched/slack.hpp), vertex-indexed; when
  /// non-empty, each bin's slack is drawn as '~' columns after it — the
  /// paper's "slacks can be intuitively visualized by selectively
  /// annotating the bins".
  std::vector<Duration> slacks;
};

/// Time view only.
std::string renderTimeView(const Schedule& schedule,
                           const AsciiGanttOptions& options = {});

/// Power view only.
std::string renderPowerView(const Schedule& schedule,
                            const AsciiGanttOptions& options = {});

/// The full power-aware Gantt chart: time view above power view.
std::string renderGantt(const Schedule& schedule,
                        const AsciiGanttOptions& options = {});

}  // namespace paws
