#include "gantt/html_report.hpp"

#include <sstream>

#include "analysis/analysis.hpp"
#include "analysis/breakdown.hpp"
#include "gantt/svg_gantt.hpp"

namespace paws {

namespace {

std::string escapeHtml(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Inline SVG polyline of the exact Ec(Pmin) curve.
std::string ecCurveSvg(const Schedule& s) {
  const auto curve = ScheduleAnalysis::energyCostCurve(s);
  if (curve.size() < 2) return {};
  const double w = 420, h = 160, m = 30;
  const double maxP = static_cast<double>(curve.back().pmin.milliwatts());
  const double maxE =
      static_cast<double>(curve.front().cost.milliwattTicks());
  if (maxP <= 0 || maxE <= 0) return {};
  std::ostringstream os;
  os << "<svg width=\"" << w << "\" height=\"" << h
     << "\" font-family=\"sans-serif\" font-size=\"10\">";
  os << "<polyline fill=\"none\" stroke=\"#3182bd\" stroke-width=\"2\" "
        "points=\"";
  for (const EcBreakpoint& bp : curve) {
    const double x =
        m + (w - 2 * m) * static_cast<double>(bp.pmin.milliwatts()) / maxP;
    const double y =
        h - m -
        (h - 2 * m) * static_cast<double>(bp.cost.milliwattTicks()) / maxE;
    os << x << ',' << y << ' ';
  }
  os << "\"/>";
  os << "<line x1=\"" << m << "\" y1=\"" << h - m << "\" x2=\"" << w - m
     << "\" y2=\"" << h - m << "\" stroke=\"#333\"/>";
  os << "<line x1=\"" << m << "\" y1=\"" << m << "\" x2=\"" << m
     << "\" y2=\"" << h - m << "\" stroke=\"#333\"/>";
  os << "<text x=\"" << w / 2 << "\" y=\"" << h - 6
     << "\" text-anchor=\"middle\">Pmin (W)</text>";
  os << "<text x=\"10\" y=\"" << m - 8 << "\">Ec (J)</text>";
  os << "</svg>";
  return os.str();
}

}  // namespace

std::string renderHtmlReport(const Schedule& schedule,
                             const HtmlReportOptions& options) {
  const Problem& p = schedule.problem();
  const std::string title =
      options.title.empty() ? p.name() : options.title;
  const ValidationReport report = ScheduleValidator(p).validate(schedule);
  const EnergyBreakdown breakdown = computeEnergyBreakdown(schedule);

  std::ostringstream os;
  os << "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>"
     << escapeHtml(title) << "</title><style>"
     << "body{font-family:sans-serif;margin:2em;max-width:1100px}"
     << "table{border-collapse:collapse}td,th{border:1px solid #ccc;"
     << "padding:4px 10px;text-align:right}th{background:#f0f0f0}"
     << ".ok{color:#2a7a2a}.bad{color:#b22}"
     << "</style></head><body>";
  os << "<h1>" << escapeHtml(title) << "</h1>";

  os << "<h2>Verdict: <span class=\""
     << (report.valid() ? "ok\">VALID" : "bad\">INVALID") << "</span></h2>";
  if (!report.valid()) {
    os << "<ul>";
    for (const Violation& v : report.violations) {
      std::ostringstream line;
      line << v;
      os << "<li class=\"bad\">" << escapeHtml(line.str()) << "</li>";
    }
    os << "</ul>";
  }

  os << "<h2>Power metrics</h2><table>"
     << "<tr><th>finish &tau;</th><th>energy cost Ec(Pmin)</th>"
     << "<th>utilization &rho;</th><th>peak</th><th>valid for</th></tr>"
     << "<tr><td>" << schedule.finish().ticks() << "</td><td>"
     << schedule.energyCost(p.minPower()) << "</td><td>"
     << static_cast<int>(100.0 * schedule.utilization(p.minPower()) + 0.5)
     << "%</td><td>" << schedule.powerProfile().peak() << "</td><td>Pmax &ge; "
     << ScheduleAnalysis::minimalValidPmax(schedule) << "</td></tr></table>";

  os << "<h2>Power-aware Gantt chart</h2>" << renderSvgGantt(schedule);

  os << "<h2>Energy cost sensitivity</h2>" << ecCurveSvg(schedule);

  os << "<h2>Energy breakdown</h2><table>"
     << "<tr><th>consumer</th><th>energy</th><th>share</th></tr>";
  const auto row = [&os](const EnergyShare& s) {
    os << "<tr><td style=\"text-align:left\">" << escapeHtml(s.name)
       << "</td><td>" << s.energy << "</td><td>"
       << static_cast<int>(s.fraction * 100.0 + 0.5) << "%</td></tr>";
  };
  row(breakdown.background);
  for (const EnergyShare& s : breakdown.byResource) row(s);
  os << "</table>";

  os << "</body></html>";
  return os.str();
}

}  // namespace paws
