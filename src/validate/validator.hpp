// Independent schedule validation.
//
// Re-checks a schedule against the *problem* (not against any scheduler
// state): every min/max separation, resource exclusivity, the non-negative
// start rule, and the Pmax budget. Implemented without reusing the
// constraint-graph/longest-path machinery so scheduler bugs cannot hide
// behind shared code. Returns structured violations that tests and tools
// can assert on; power gaps are reported separately because min power is a
// soft constraint.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "base/interval.hpp"
#include "model/problem.hpp"
#include "sched/schedule.hpp"

namespace paws {

struct Violation {
  enum class Kind : std::uint8_t {
    kNegativeStart,      ///< task starts before time 0
    kMinSeparation,      ///< a min separation is broken
    kMaxSeparation,      ///< a max separation is broken
    kResourceOverlap,    ///< two same-resource tasks overlap
    kPowerSpike,         ///< P(t) > Pmax somewhere
  };
  Kind kind;
  std::string detail;
};

const char* toString(Violation::Kind kind);
std::ostream& operator<<(std::ostream& os, const Violation& v);

struct ValidationReport {
  std::vector<Violation> violations;
  /// Soft-constraint info: maximal intervals with P(t) < Pmin.
  std::vector<Interval> powerGaps;

  [[nodiscard]] bool timeValid() const {
    for (const Violation& v : violations) {
      if (v.kind != Violation::Kind::kPowerSpike) return false;
    }
    return true;
  }
  [[nodiscard]] bool powerValid() const {
    for (const Violation& v : violations) {
      if (v.kind == Violation::Kind::kPowerSpike) return false;
    }
    return timeValid();
  }
  /// Fully valid (hard constraints only; gaps are allowed).
  [[nodiscard]] bool valid() const { return violations.empty(); }

  /// One-line human summary ("valid", or "3 violations: 2 min-separation,
  /// 1 power-spike").
  [[nodiscard]] std::string summary() const;
};

class ScheduleValidator {
 public:
  explicit ScheduleValidator(const Problem& problem) : problem_(problem) {}

  [[nodiscard]] ValidationReport validate(const Schedule& schedule) const;

 private:
  const Problem& problem_;
};

}  // namespace paws
