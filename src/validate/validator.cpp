#include "validate/validator.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

namespace paws {

const char* toString(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kNegativeStart:
      return "negative-start";
    case Violation::Kind::kMinSeparation:
      return "min-separation";
    case Violation::Kind::kMaxSeparation:
      return "max-separation";
    case Violation::Kind::kResourceOverlap:
      return "resource-overlap";
    case Violation::Kind::kPowerSpike:
      return "power-spike";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Violation& v) {
  return os << toString(v.kind) << ": " << v.detail;
}

std::string ValidationReport::summary() const {
  if (violations.empty()) return "valid";
  std::map<Violation::Kind, int> counts;
  for (const Violation& v : violations) ++counts[v.kind];
  std::ostringstream os;
  os << violations.size() << " violation"
     << (violations.size() == 1 ? "" : "s") << ": ";
  bool first = true;
  for (const auto& [kind, count] : counts) {
    if (!first) os << ", ";
    first = false;
    os << count << ' ' << toString(kind);
  }
  return os.str();
}

ValidationReport ScheduleValidator::validate(const Schedule& schedule) const {
  ValidationReport report;
  auto add = [&report](Violation::Kind kind, const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    report.violations.push_back(Violation{kind, os.str()});
  };

  // Non-negative starts.
  bool anyNegative = false;
  for (TaskId v : problem_.taskIds()) {
    if (schedule.start(v) < Time::zero()) {
      anyNegative = true;
      add(Violation::Kind::kNegativeStart, "task '", problem_.task(v).name,
          "' starts at ", schedule.start(v));
    }
  }

  // Timing separations, straight from the declarations.
  for (const TimingConstraint& c : problem_.constraints()) {
    const Time from = schedule.start(c.from);
    const Time to = schedule.start(c.to);
    switch (c.kind) {
      case TimingConstraint::Kind::kMinSeparation:
        if (to - from < c.separation) {
          add(Violation::Kind::kMinSeparation, "'",
              problem_.task(c.to).name, "' starts ", (to - from).ticks(),
              " after '", problem_.task(c.from).name, "', needs >= ",
              c.separation.ticks());
        }
        break;
      case TimingConstraint::Kind::kMaxSeparation:
        if (to - from > c.separation) {
          add(Violation::Kind::kMaxSeparation, "'",
              problem_.task(c.to).name, "' starts ", (to - from).ticks(),
              " after '", problem_.task(c.from).name, "', needs <= ",
              c.separation.ticks());
        }
        break;
    }
  }

  // Resource exclusivity: group per resource (dense vectors indexed by
  // resource id — no tree map), sort by start, adjacent overlap check.
  const std::span<const ResourceId> taskResources = problem_.taskResources();
  std::vector<std::vector<TaskId>> byResource(problem_.numResources());
  for (std::size_t i = 1; i < problem_.numVertices(); ++i) {
    byResource[taskResources[i].index()].push_back(
        TaskId(static_cast<std::uint32_t>(i)));
  }
  for (std::size_t r = 0; r < byResource.size(); ++r) {
    std::vector<TaskId>& tasks = byResource[r];
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      return schedule.start(a) < schedule.start(b);
    });
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      const TaskId prev = tasks[i - 1];
      const TaskId cur = tasks[i];
      if (schedule.interval(prev).overlaps(schedule.interval(cur))) {
        add(Violation::Kind::kResourceOverlap, "'",
            problem_.task(prev).name, "' ", schedule.interval(prev),
            " and '", problem_.task(cur).name, "' ", schedule.interval(cur),
            " overlap on resource '",
            problem_.resource(ResourceId(static_cast<std::uint32_t>(r))).name,
            "'");
      }
    }
  }

  // Power budget, via the profile (fixed-point, so exact). Profiles are
  // only defined over [0, finish), so skip when a start is negative — the
  // kNegativeStart violations already invalidate the schedule.
  if (!anyNegative) {
    const PowerProfile& profile = schedule.powerProfile();
    for (const Interval& spike : profile.spikes(problem_.maxPower())) {
      add(Violation::Kind::kPowerSpike, "P(t) > ", problem_.maxPower(),
          " during ", spike);
    }
    report.powerGaps = profile.gaps(problem_.minPower());
  }
  return report;
}

}  // namespace paws
