// pawsd's engine room — a long-lived scheduling service over TCP or unix
// sockets.
//
// The robustness architecture, end to end:
//
//   accept thread ── thread per connection ── bounded exec::Pool
//
//   * Admission control: solves enter the worker pool through
//     Pool::trySubmit against a hard queue bound. A full queue is an
//     immediate structured `overloaded`/`queue_full` response — the
//     client always learns its fate in one round trip, never via silent
//     latency.
//   * Per-request isolation: each request parses its own Problem, runs
//     under its own MetricsRegistry (folded into the daemon-wide registry
//     only at completion), its own RunBudget (client timeout_ms clamped
//     by the server, else the server default), and its own CancelSource —
//     fired when the client disconnects mid-solve, when the drain budget
//     expires, or never.
//   * Overload shedding: a ServiceLadder (serve/ladder.hpp) watches queue
//     depth and p99 service time and walks healthy → degraded (optimal
//     requests downgraded to the pipeline heuristic) → cache_only (exact
//     cache hits only) → reject_new. Every transition is a trace event
//     and a serve.mode_changes count.
//   * Graceful drain: requestStop() (async-signal-safe: one atomic store)
//     makes run() stop accepting, refuse new work with
//     `overloaded`/`draining`, wait out in-flight solves up to the drain
//     budget, cancel stragglers (they return anytime results), flush the
//     cache to --cache-dir, and join every thread before returning.
//   * Hard input caps: wire frames are bounded by io::kMaxSourceBytes
//     before allocation (serve/frame.hpp), request headers by
//     kMaxHeaderLines, problems by the io:: parser limits — the same
//     fuzz-hardened ceilings file input rides under.
//
// Counters (daemon-wide registry, scraped via a kMetricsRequest frame as
// OpenMetrics text): serve.accepted, serve.completed, serve.shed,
// serve.invalid, serve.cancelled, serve.deadline, serve.degraded,
// serve.cache_hits, serve.mode_changes, serve.drained, plus the
// serve.service_time_us histogram and the exec.*/cache.* exports.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/schedule_cache.hpp"
#include "exec/pool.hpp"
#include "guard/cancel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/frame.hpp"
#include "serve/ladder.hpp"

namespace paws::serve {

struct DaemonConfig {
  /// "tcp:<host>:<port>" (port 0 = ephemeral, see boundAddress()) or
  /// "unix:<path>".
  std::string address = "tcp:127.0.0.1:0";
  /// Worker threads solving requests (0 = exec::defaultJobs()).
  std::size_t solverThreads = 2;
  /// Intake queue bound (Pool::trySubmit capacity). Must be >= 1.
  std::size_t maxQueued = 16;
  /// Server-default RunBudget per request; a client timeout_ms may only
  /// shorten its own (both clamp at kMaxClientTimeoutMs).
  std::int64_t defaultTimeoutMs = 2000;
  /// How long a drain waits for in-flight work before cancelling it.
  std::int64_t drainBudgetMs = 2000;
  /// Slow-writer watchdog: a connection stalled mid-frame longer than
  /// this is answered `invalid`/`frame_timeout` and dropped. Idle
  /// connections *between* frames are left alone indefinitely.
  std::int64_t frameStallMs = 5000;
  /// Directory for ScheduleCache persistence ("" = in-memory only).
  std::string cacheDir;
  std::size_t cacheCapacity = 4096;
  LadderConfig ladder;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, loads any persisted cache, and spawns the acceptor.
  /// False (with *error) on bind/listen failure.
  [[nodiscard]] bool start(std::string* error);

  /// The resolved listen address ("tcp:127.0.0.1:41873" / "unix:<path>"),
  /// valid after start() — how a supervisor learns an ephemeral port.
  [[nodiscard]] std::string boundAddress() const;

  /// Async-signal-safe stop request (one relaxed atomic store): the next
  /// acceptor poll tick begins the drain. Safe to call repeatedly.
  void requestStop() { stopRequested_.store(true, std::memory_order_relaxed); }

  /// Blocks until requestStop(), then drains: refuse new work, wait out
  /// in-flight solves up to drainBudgetMs, cancel stragglers, flush the
  /// cache, join every thread. Returns the process exit code (0 = clean).
  int run();

  [[nodiscard]] ServiceMode mode() const { return ladder_.mode(); }
  [[nodiscard]] const DaemonConfig& config() const { return config_; }

  /// Snapshot of the daemon-wide registry plus pool/cache exports — the
  /// kMetricsRequest scrape body is toOpenMetrics() of this.
  [[nodiscard]] obs::MetricsRegistry metricsSnapshot() const;

  /// The serve-event trace sink (shed / mode / drain events), readable
  /// after run() returns.
  [[nodiscard]] const obs::TraceSink& trace() const { return trace_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
    /// Cancels the connection's in-flight solve, if any. Guarded by
    /// cancelMu: the connection thread installs a fresh source per
    /// request while the drain thread fires the current one.
    std::mutex cancelMu;
    guard::CancelSource cancel;
    std::atomic<bool> solving{false};
  };

  void acceptLoop();
  void connectionLoop(Connection& conn);
  /// Serves one kRequest payload; false when the connection must close.
  bool handleRequest(Connection& conn, const std::string& payload);
  bool sendFrame(int fd, FrameType type, std::string_view payload);
  void bumpServe(const char* name, std::uint64_t delta = 1);
  void foldMetrics(const obs::MetricsRegistry& perRequest);
  void observeLadder();
  void traceInstant(obs::TraceEventKind kind, const char* label,
                    std::int64_t value = 0);
  void drain();
  void reapFinishedConnections();

  DaemonConfig config_;
  int listenFd_ = -1;
  std::string boundAddress_;
  /// Path to unlink on shutdown for unix sockets ("" otherwise).
  std::string unixPath_;

  exec::Pool pool_;
  cache::ScheduleCache cache_;
  ServiceLadder ladder_;

  std::atomic<bool> stopRequested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::int64_t> inflight_{0};

  std::thread acceptor_;
  mutable std::mutex connMu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  mutable std::mutex metricsMu_;
  obs::MetricsRegistry metrics_;

  /// TraceSink is single-writer; connection threads serialize through
  /// this mutex (shed/mode/drain events only — never per-byte traffic).
  std::mutex traceMu_;
  obs::TraceSink trace_;
};

}  // namespace paws::serve
