#include "serve/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>

#include "cache/cached_solve.hpp"
#include "guard/budget.hpp"
#include "io/parser.hpp"
#include "io/schedule_io.hpp"
#include "obs/export.hpp"
#include "serve/protocol.hpp"

namespace paws::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t usBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
}

/// Parsed form of DaemonConfig::address.
struct Address {
  bool ok = false;
  bool isUnix = false;
  std::string host;
  std::uint16_t port = 0;
  std::string path;
  std::string error;
};

Address parseAddress(const std::string& spec) {
  Address a;
  if (spec.rfind("unix:", 0) == 0) {
    a.isUnix = true;
    a.path = spec.substr(5);
    if (a.path.empty() || a.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      a.error = "bad unix socket path";
      return a;
    }
    a.ok = true;
    return a;
  }
  std::string rest = spec;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    a.error = "address must be tcp:<host>:<port> or unix:<path>";
    return a;
  }
  a.host = rest.substr(0, colon);
  const std::string portText = rest.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(portText.c_str(), &end, 10);
  if (end == portText.c_str() || *end != '\0' || port < 0 || port > 65535) {
    a.error = "bad port";
    return a;
  }
  a.port = static_cast<std::uint16_t>(port);
  a.ok = true;
  return a;
}

/// Blocking full-buffer send; false on any error (peer gone).
bool sendAll(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

/// True when the peer has orderly-closed or errored (NOT when it merely
/// has pipelined bytes waiting — those are future requests, not a hangup).
bool peerGone(int fd) {
  pollfd p{fd, POLLIN, 0};
  const int rc = ::poll(&p, 1, 0);
  if (rc <= 0) return false;
  if ((p.revents & (POLLERR | POLLNVAL)) != 0) return true;
  if ((p.revents & POLLIN) != 0) {
    char probe;
    const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) return true;                       // orderly shutdown
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return true;
    }
  }
  // POLLHUP alone with readable data still pending means the final
  // request deserves its response; peerGone stays false until drained.
  return (p.revents & POLLHUP) != 0 && (p.revents & POLLIN) == 0;
}

const char* outcomeOf(SchedStatus status, bool hasSchedule) {
  switch (status) {
    case SchedStatus::kOk:
      return "ok";
    case SchedStatus::kDeadlineExceeded:
      return hasSchedule ? "anytime" : "deadline";
    case SchedStatus::kBudgetExhausted:
      return "budget";
    case SchedStatus::kTimingInfeasible:
    case SchedStatus::kPowerInfeasible:
      return "infeasible";
    case SchedStatus::kInvalidInput:
      return "invalid";
  }
  return "error";
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      pool_(config_.solverThreads,
            config_.maxQueued == 0 ? 1 : config_.maxQueued),
      cache_(config_.cacheCapacity),
      ladder_(config_.ladder) {}

Daemon::~Daemon() {
  requestStop();
  if (acceptor_.joinable()) drain();
  if (listenFd_ >= 0) ::close(listenFd_);
}

bool Daemon::start(std::string* error) {
  const Address addr = parseAddress(config_.address);
  if (!addr.ok) {
    if (error != nullptr) *error = addr.error;
    return false;
  }
  int fd = -1;
  if (addr.isUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    ::unlink(addr.path.c_str());  // stale socket from a crashed run
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      if (error != nullptr) *error = std::strerror(errno);
      ::close(fd);
      return false;
    }
    unixPath_ = addr.path;
    boundAddress_ = "unix:" + addr.path;
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
      if (error != nullptr) *error = "bad host (IPv4 literal required)";
      ::close(fd);
      return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      if (error != nullptr) *error = std::strerror(errno);
      ::close(fd);
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof ip);
    boundAddress_ =
        "tcp:" + std::string(ip) + ":" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  listenFd_ = fd;

  if (!config_.cacheDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.cacheDir, ec);
    const std::string cachePath =
        (std::filesystem::path(config_.cacheDir) /
         cache::ScheduleCache::kFileName())
            .string();
    std::string loadError;
    if (!cache_.load(cachePath, &loadError) && !loadError.empty()) {
      // Structured skip: a damaged cache costs warm starts, not uptime.
      std::fprintf(stderr, "pawsd: cache skipped: %s\n", loadError.c_str());
    }
  }

  acceptor_ = std::thread([this] { acceptLoop(); });
  return true;
}

std::string Daemon::boundAddress() const { return boundAddress_; }

int Daemon::run() {
  // The acceptor owns accept(2); this thread is the drain supervisor.
  while (!stopRequested_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    reapFinishedConnections();
  }
  drain();
  return 0;
}

void Daemon::acceptLoop() {
  while (!stopRequested_.load(std::memory_order_relaxed)) {
    pollfd p{listenFd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, 100);
    if (rc <= 0) continue;  // timeout slice or EINTR: re-check stop flag
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      // The thread member is joined by the reaper under connMu_; the
      // assignment must happen under the same lock or a connection that
      // finishes instantly races the reaper against the move-assign.
      std::lock_guard<std::mutex> lock(connMu_);
      connections_.push_back(std::move(conn));
      raw->thread = std::thread([this, raw] { connectionLoop(*raw); });
    }
  }
}

void Daemon::connectionLoop(Connection& conn) {
  FrameDecoder decoder;
  Clock::time_point lastByte = Clock::now();
  char buf[16384];
  bool keepOpen = true;
  while (keepOpen && !draining_.load(std::memory_order_relaxed)) {
    pollfd p{conn.fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) {
      // Idle tick. A *partial* frame stalled past the watchdog is a slow
      // writer hogging a connection: answer and drop. Idle between
      // frames is fine forever.
      if (decoder.pendingBytes() > 0 &&
          usBetween(lastByte, Clock::now()) >
              config_.frameStallMs * 1000) {
        Response r;
        r.outcome = "invalid";
        r.reason = "frame_timeout";
        r.mode = toString(ladder_.mode());
        sendFrame(conn.fd, FrameType::kResponse, toJson(r));
        bumpServe("serve.invalid");
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n == 0) break;  // orderly close
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    lastByte = Clock::now();
    if (!decoder.feed(buf, static_cast<std::size_t>(n))) {
      // Malformed wire data: one structured answer, then the connection
      // is unsalvageable (framing is lost for good).
      Response r;
      r.outcome = "invalid";
      r.reason = decoder.error();
      r.mode = toString(ladder_.mode());
      sendFrame(conn.fd, FrameType::kResponse, toJson(r));
      bumpServe("serve.invalid");
      break;
    }
    Frame frame;
    while (keepOpen && decoder.next(frame)) {
      switch (frame.type) {
        case FrameType::kRequest:
          keepOpen = handleRequest(conn, frame.payload);
          break;
        case FrameType::kMetricsRequest: {
          const obs::MetricsRegistry snapshot = metricsSnapshot();
          keepOpen = sendFrame(conn.fd, FrameType::kMetricsResponse,
                               obs::toOpenMetrics(snapshot));
          break;
        }
        case FrameType::kResponse:
        case FrameType::kMetricsResponse: {
          Response r;
          r.outcome = "invalid";
          r.reason = "unexpected_frame_type";
          r.mode = toString(ladder_.mode());
          sendFrame(conn.fd, FrameType::kResponse, toJson(r));
          bumpServe("serve.invalid");
          keepOpen = false;
          break;
        }
      }
    }
  }
  {
    // drain() reads fd under connMu_ to shut down lingering sockets;
    // closing under the same lock keeps it from ever shutting down a
    // recycled descriptor number.
    std::lock_guard<std::mutex> lock(connMu_);
    ::close(conn.fd);
    conn.fd = -1;
  }
  conn.done.store(true, std::memory_order_release);
}

bool Daemon::handleRequest(Connection& conn, const std::string& payload) {
  const Clock::time_point started = Clock::now();
  Response response;

  const auto refuse = [&](const char* outcome, const std::string& reason,
                          const char* counter) {
    response.outcome = outcome;
    response.reason = reason;
    response.mode = toString(ladder_.mode());
    response.serviceUs = usBetween(started, Clock::now());
    bumpServe(counter);
    if (std::string_view(outcome) == "overloaded") {
      // Shed reasons are a closed set; intern them so the trace label is
      // static-storage as TraceEvent requires.
      const char* label = reason == "queue_full"    ? "queue_full"
                          : reason == "shedding"    ? "shedding"
                          : reason == "cache_only"  ? "cache_only"
                          : reason == "draining"    ? "draining"
                                                    : "overloaded";
      traceInstant(obs::TraceEventKind::kServeShed, label,
                   static_cast<std::int64_t>(pool_.queueDepth()));
    }
    return sendFrame(conn.fd, FrameType::kResponse, toJson(response));
  };

  if (draining_.load(std::memory_order_relaxed) ||
      stopRequested_.load(std::memory_order_relaxed)) {
    return refuse("overloaded", "draining", "serve.shed");
  }

  observeLadder();
  const ServiceMode mode = ladder_.mode();
  if (mode == ServiceMode::kRejectNew) {
    return refuse("overloaded", "shedding", "serve.shed");
  }

  const ParseRequestResult parsed = parseRequest(payload);
  if (!parsed.ok) {
    return refuse("invalid", parsed.error, "serve.invalid");
  }
  io::ParseResult problem = io::parseProblem(parsed.request.problemText);
  if (!problem.ok()) {
    return refuse("invalid",
                  problem.errors.empty() ? std::string("parse")
                                         : io::format(problem.errors.front()),
                  "serve.invalid");
  }

  cache::SolveSpec spec;
  spec.scheduler = parsed.request.scheduler;
  spec.trials = parsed.request.trials;
  // One solver thread per request: results must be byte-identical to a
  // single-threaded `pawsc schedule` run (the determinism contract).
  spec.jobs = 1;

  if (mode == ServiceMode::kCacheOnly) {
    // Shedding rung 2: repeated traffic still gets its microsecond
    // answer; anything needing a solve is refused.
    cache::SolveInfo info;
    std::optional<ScheduleResult> served =
        cache::tryServeExact(cache_, *problem.problem, spec, &info);
    if (!served.has_value()) {
      return refuse("overloaded", "cache_only", "serve.shed");
    }
    const Schedule& s = *served->schedule;
    response.outcome = "ok";
    response.mode = toString(mode);
    response.cacheHit = true;
    response.finishTicks = s.finish().ticks();
    response.energyCostMwt =
        s.energyCost(problem.problem->minPower()).milliwattTicks();
    response.scheduleText = io::scheduleToText(s, spec.scheduler);
    response.scheduleDigest = scheduleDigest(response.scheduleText);
    response.serviceUs = usBetween(started, Clock::now());
    ladder_.recordServiceUs(response.serviceUs);
    bumpServe("serve.accepted");
    bumpServe("serve.completed");
    bumpServe("serve.cache_hits");
    return sendFrame(conn.fd, FrameType::kResponse, toJson(response));
  }

  bool degraded = false;
  if (mode == ServiceMode::kDegraded && spec.scheduler == "optimal") {
    // Shedding rung 1: exhaustive work is the first thing to go — the
    // pipeline heuristic answers the same request orders of magnitude
    // cheaper, at heuristic quality.
    spec.scheduler = "pipeline";
    degraded = true;
  }

  // Per-request budget: client timeout (already capped by the protocol)
  // or the server default. Resolved once, in the worker, when the solve
  // actually starts — queue wait must not eat the solve budget, the
  // admission bound already keeps queue wait short.
  const std::int64_t timeoutMs = parsed.request.timeoutMs > 0
                                     ? parsed.request.timeoutMs
                                     : config_.defaultTimeoutMs;

  guard::CancelToken token;
  {
    std::lock_guard<std::mutex> lock(conn.cancelMu);
    conn.cancel = guard::CancelSource();
    token = conn.cancel.token();
  }
  const Problem& prob = *problem.problem;
  auto perRequest = std::make_shared<obs::MetricsRegistry>();
  auto solvePromise = std::make_shared<
      std::promise<std::pair<ScheduleResult, cache::SolveInfo>>>();
  std::future<std::pair<ScheduleResult, cache::SolveInfo>> solveFuture =
      solvePromise->get_future();

  // Count the request in-flight from BEFORE admission to AFTER its
  // response hits the socket: the drain supervisor must not cut a
  // connection that still owes its client an answer.
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  conn.solving.store(true, std::memory_order_release);
  const bool admitted = pool_.trySubmit(
      [this, &prob, spec, timeoutMs, token, perRequest, solvePromise]() mutable {
        spec.budget.timeout = std::chrono::milliseconds(timeoutMs);
        spec.budget.cancel = token;
        spec.budget = spec.budget.resolved();
        spec.obs.metrics = perRequest.get();
        cache::SolveInfo info;
        ScheduleResult r = solveThroughCache(&cache_, prob, spec, &info);
        solvePromise->set_value({std::move(r), info});
      });
  if (!admitted) {
    conn.solving.store(false, std::memory_order_release);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return refuse("overloaded", "queue_full", "serve.shed");
  }
  bumpServe("serve.accepted");
  if (degraded) bumpServe("serve.degraded");

  // Wait for the solve while watching the socket: a client that hangs up
  // mid-solve fires the request's CancelToken so the worker unwinds at
  // its next safe point instead of finishing work nobody will read.
  bool clientGone = false;
  for (;;) {
    if (solveFuture.wait_for(std::chrono::milliseconds(20)) ==
        std::future_status::ready) {
      break;
    }
    if (!clientGone && peerGone(conn.fd)) {
      clientGone = true;
      conn.cancel.cancel();
      bumpServe("serve.cancelled");
    }
    // During a drain the supervisor fires the same CancelSource; either
    // way the worker unwinds and the future becomes ready promptly.
  }
  auto [result, info] = solveFuture.get();
  conn.solving.store(false, std::memory_order_release);
  foldMetrics(*perRequest);

  if (clientGone) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;  // nobody to answer; close the slot
  }

  response.outcome = outcomeOf(result.status, result.schedule.has_value());
  response.reason = conn.cancel.cancelled() &&
                            result.status == SchedStatus::kDeadlineExceeded
                        ? "cancelled"
                        : (result.status == SchedStatus::kOk
                               ? ""
                               : toString(result.status));
  response.mode = toString(mode);
  response.degraded = degraded;
  response.cacheHit = info.servedFromCache();
  if (result.schedule.has_value()) {
    const Schedule& s = *result.schedule;
    response.finishTicks = s.finish().ticks();
    response.energyCostMwt = s.energyCost(prob.minPower()).milliwattTicks();
    response.scheduleText = io::scheduleToText(s, spec.scheduler);
    response.scheduleDigest = scheduleDigest(response.scheduleText);
  }
  response.serviceUs = usBetween(started, Clock::now());
  ladder_.recordServiceUs(response.serviceUs);
  {
    std::lock_guard<std::mutex> lock(metricsMu_);
    metrics_.observe("serve.service_time_us",
                     static_cast<double>(response.serviceUs));
  }
  bumpServe("serve.completed");
  if (info.servedFromCache()) bumpServe("serve.cache_hits");
  if (result.status == SchedStatus::kDeadlineExceeded) {
    bumpServe("serve.deadline");
  }
  const bool sent =
      sendFrame(conn.fd, FrameType::kResponse, toJson(response));
  // Only now may the drain supervisor consider this request settled.
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return sent;
}

bool Daemon::sendFrame(int fd, FrameType type, std::string_view payload) {
  const std::string wire = encodeFrame(type, payload);
  return sendAll(fd, wire.data(), wire.size());
}

void Daemon::bumpServe(const char* name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(metricsMu_);
  metrics_.add(name, delta);
}

void Daemon::foldMetrics(const obs::MetricsRegistry& perRequest) {
  std::lock_guard<std::mutex> lock(metricsMu_);
  metrics_ += perRequest;
}

void Daemon::observeLadder() {
  LadderSignals signals;
  signals.queueDepth = pool_.queueDepth();
  signals.queueCapacity = pool_.maxQueued();
  signals.p99ServiceUs = ladder_.p99ServiceUs();
  signals.defaultBudgetUs = config_.defaultTimeoutMs * 1000;
  const ModeChange change = ladder_.observe(signals);
  if (change.changed) {
    bumpServe("serve.mode_changes");
    traceInstant(obs::TraceEventKind::kServeMode, toString(change.to),
                 static_cast<std::int64_t>(signals.queueDepth));
  }
}

void Daemon::traceInstant(obs::TraceEventKind kind, const char* label,
                          std::int64_t value) {
  std::lock_guard<std::mutex> lock(traceMu_);
  trace_.instant(kind, obs::TraceEvent::kNoTask, 0, value, 0, label);
}

obs::MetricsRegistry Daemon::metricsSnapshot() const {
  obs::MetricsRegistry snapshot;
  {
    std::lock_guard<std::mutex> lock(metricsMu_);
    snapshot += metrics_;
  }
  pool_.exportMetrics(snapshot);
  cache_.exportMetrics(snapshot);
  snapshot.set("serve.queue_depth", static_cast<double>(pool_.queueDepth()));
  snapshot.set("serve.mode",
               static_cast<double>(static_cast<int>(ladder_.mode())));
  snapshot.set("serve.inflight",
               static_cast<double>(inflight_.load(std::memory_order_relaxed)));
  return snapshot;
}

void Daemon::reapFinishedConnections() {
  std::lock_guard<std::mutex> lock(connMu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Daemon::drain() {
  const auto drainStartNs = trace_.nowNs();
  const Clock::time_point t0 = Clock::now();
  draining_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }

  // Phase 1: let in-flight solves finish on their own budgets.
  while (inflight_.load(std::memory_order_acquire) > 0 &&
         usBetween(t0, Clock::now()) < config_.drainBudgetMs * 1000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Phase 2: cancel stragglers — they return anytime results promptly.
  if (inflight_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(connMu_);
    for (const auto& conn : connections_) {
      if (conn->solving.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> cancelLock(conn->cancelMu);
        conn->cancel.cancel();
      }
    }
  }
  // Grace window for the cancelled solves to deliver their responses.
  const Clock::time_point t1 = Clock::now();
  while (inflight_.load(std::memory_order_acquire) > 0 &&
         usBetween(t1, Clock::now()) < config_.drainBudgetMs * 1000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Phase 3: pop every connection out of recv() and join. The list is
  // swapped out under the lock, but the joins happen outside it — a
  // connection's exit path takes connMu_ to close its fd, so joining
  // while holding the lock would deadlock against it.
  std::vector<std::unique_ptr<Connection>> remaining;
  {
    std::lock_guard<std::mutex> lock(connMu_);
    remaining.swap(connections_);
    for (const auto& conn : remaining) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (const auto& conn : remaining) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  remaining.clear();

  // Phase 4: persist the cache so the next process starts warm.
  if (!config_.cacheDir.empty()) {
    const std::string cachePath =
        (std::filesystem::path(config_.cacheDir) /
         cache::ScheduleCache::kFileName())
            .string();
    std::string saveError;
    if (!cache_.save(cachePath, &saveError)) {
      std::fprintf(stderr, "pawsd: cache save failed: %s\n",
                   saveError.c_str());
    }
  }
  if (!unixPath_.empty()) ::unlink(unixPath_.c_str());

  bumpServe("serve.drained");
  {
    std::lock_guard<std::mutex> lock(traceMu_);
    trace_.span(obs::TraceEventKind::kServeDrain, drainStartNs,
                trace_.nowNs() - drainStartNs, "drain");
  }
}

}  // namespace paws::serve
