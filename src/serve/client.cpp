#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace paws::serve {

namespace {

using Clock = std::chrono::steady_clock;

bool sendAll(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace

bool Client::connect(const std::string& address, std::string* error) {
  close();
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      if (error != nullptr) *error = std::strerror(errno);
      ::close(fd);
      return false;
    }
    fd_ = fd;
    return true;
  }
  std::string rest = address;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    if (error != nullptr) *error = "address must be tcp:<host>:<port>";
    return false;
  }
  const std::string host = rest.substr(0, colon);
  const int port = std::atoi(rest.c_str() + colon + 1);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host (IPv4 literal required)";
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool Client::sendRequest(const Request& request) {
  if (fd_ < 0) return false;
  const std::string wire =
      encodeFrame(FrameType::kRequest, formatRequest(request));
  return sendAll(fd_, wire.data(), wire.size());
}

bool Client::sendMetricsRequest() {
  if (fd_ < 0) return false;
  const std::string wire = encodeFrame(FrameType::kMetricsRequest, "");
  return sendAll(fd_, wire.data(), wire.size());
}

bool Client::rawSend(std::string_view bytes) {
  if (fd_ < 0) return false;
  return sendAll(fd_, bytes.data(), bytes.size());
}

bool Client::readFrame(Frame& out, std::int64_t timeoutMs) {
  if (fd_ < 0) return false;
  if (decoder_.next(out)) return true;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeoutMs);
  char buf[16384];
  while (Clock::now() < deadline) {
    const auto leftMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
    pollfd p{fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(std::max<long long>(
                                     1, std::min<long long>(leftMs, 100))));
    if (rc < 0 && errno != EINTR) return false;
    if (rc <= 0) continue;
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) return false;  // server closed
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (!decoder_.feed(buf, static_cast<std::size_t>(n))) return false;
    if (decoder_.next(out)) return true;
  }
  return false;
}

bool Client::readResponse(Response& out, std::int64_t timeoutMs) {
  Frame frame;
  if (!readFrame(frame, timeoutMs)) return false;
  if (frame.type != FrameType::kResponse) return false;
  return responseFromJson(frame.payload, out);
}

bool Client::readMetrics(std::string& out, std::int64_t timeoutMs) {
  Frame frame;
  if (!readFrame(frame, timeoutMs)) return false;
  if (frame.type != FrameType::kMetricsResponse) return false;
  out = std::move(frame.payload);
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

void Client::abortiveClose() {
  if (fd_ < 0) return;
  // SO_LINGER with zero timeout turns close() into a RST on TCP; on unix
  // sockets it degrades to an ordinary close, which is fine — the point
  // is "vanish without reading the response".
  linger lg{1, 0};
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  ::close(fd_);
  fd_ = -1;
  decoder_ = FrameDecoder();
}

bool requestOnce(const std::string& address, const Request& request,
                 Response& out, std::int64_t timeoutMs, std::string* error) {
  Client client;
  if (!client.connect(address, error)) return false;
  if (!client.sendRequest(request)) {
    if (error != nullptr) *error = "send failed";
    return false;
  }
  if (!client.readResponse(out, timeoutMs)) {
    if (error != nullptr) *error = "no response";
    return false;
  }
  return true;
}

}  // namespace paws::serve
