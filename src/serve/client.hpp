// Blocking pawsd client — the protocol's other half, shared by
// tools/pawsd_loadgen, the service tests, and anyone scripting against a
// daemon. Deliberately low-level: the chaos harness needs to misbehave
// (send raw garbage, write one byte at a time, vanish mid-request), so
// every step is its own call and rawSend() bypasses framing entirely.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/frame.hpp"
#include "serve/protocol.hpp"

namespace paws::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

  /// Connects to "tcp:<host>:<port>" or "unix:<path>" (the daemon's
  /// boundAddress() format). False with *error on failure.
  [[nodiscard]] bool connect(const std::string& address,
                             std::string* error = nullptr);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Frames and sends one request payload.
  [[nodiscard]] bool sendRequest(const Request& request);
  /// Frames and sends a metrics scrape request.
  [[nodiscard]] bool sendMetricsRequest();
  /// Sends raw bytes with no framing — malformed-frame injection.
  [[nodiscard]] bool rawSend(std::string_view bytes);

  /// Reads frames until one kResponse arrives and parses it. False on
  /// disconnect, timeout, or unparseable response JSON.
  [[nodiscard]] bool readResponse(Response& out, std::int64_t timeoutMs);
  /// Reads until a kMetricsResponse arrives; `out` gets the OpenMetrics
  /// text body.
  [[nodiscard]] bool readMetrics(std::string& out, std::int64_t timeoutMs);

  /// Orderly close (the daemon sees EOF). Safe on a closed client.
  void close();
  /// Abortive close: RST instead of FIN where the transport supports it —
  /// the rudest mid-request disconnect the chaos mix can produce.
  void abortiveClose();

 private:
  [[nodiscard]] bool readFrame(Frame& out, std::int64_t timeoutMs);

  int fd_ = -1;
  FrameDecoder decoder_;
};

/// One-shot convenience: connect, send, await the response.
[[nodiscard]] bool requestOnce(const std::string& address,
                               const Request& request, Response& out,
                               std::int64_t timeoutMs,
                               std::string* error = nullptr);

}  // namespace paws::serve
