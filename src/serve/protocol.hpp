// pawsd request/response payloads — what travels inside the wire frames.
//
// A request payload is line-oriented text so it stays hand-writable with
// netcat and trivially fuzzable:
//
//   paws-request/1
//   scheduler: pipeline          (pipeline | serial | list | optimal)
//   timeout_ms: 500              (0 or absent = server default)
//   trials: 4
//   ---
//   <.paws problem text>
//
// Unknown header keys are ignored (forward compatibility); header count
// and line length are hard-capped, and the problem text after `---` rides
// under the same io:: parser limits as a file would. A response payload
// is one JSON object (schema 1) that always states a machine-readable
// `outcome` + `reason`, so every rejection — overload, drain, malformed
// input, deadline — is structured, never a dropped connection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace paws::serve {

/// Request header caps: past either, the payload is rejected as a whole
/// (a header section that big is an attack, not a workload).
inline constexpr std::size_t kMaxHeaderLines = 32;
inline constexpr std::size_t kMaxHeaderLineBytes = 256;
/// Upper bound on a client-supplied timeout: pawsd is a shared service,
/// one request may not park a worker for an hour.
inline constexpr std::int64_t kMaxClientTimeoutMs = 60000;

struct Request {
  std::string scheduler = "pipeline";
  std::uint32_t trials = 4;
  /// 0 = use the server default budget.
  std::int64_t timeoutMs = 0;
  std::string problemText;
};

struct ParseRequestResult {
  bool ok = false;
  /// Stable reason on failure: bad_preamble | header_too_long |
  /// too_many_headers | bad_scheduler | bad_timeout | bad_trials |
  /// missing_separator | empty_problem.
  std::string error;
  Request request;
};

/// Parses a kRequest frame payload. Never throws; hostile input yields
/// ok=false with a stable reason.
ParseRequestResult parseRequest(std::string_view payload);

/// Serializes `req` into a payload parseRequest accepts (client side).
std::string formatRequest(const Request& req);

/// Response outcome vocabulary — the daemon's whole answer surface.
/// ok        — schedule produced within budget
/// anytime   — budget/deadline tripped; best incumbent included
/// infeasible— no valid schedule exists for the problem
/// invalid   — malformed frame/request/problem; reason says which
/// overloaded— admission refused; reason: queue_full | shedding | draining
/// cancelled — client vanished mid-solve (logged, rarely ever seen by one)
/// error     — internal failure
struct Response {
  std::string outcome = "error";
  std::string reason;
  /// Overload-ladder rung that served (or refused) the request.
  std::string mode = "healthy";
  /// True when the ladder downgraded the requested scheduler.
  bool degraded = false;
  bool cacheHit = false;
  std::int64_t finishTicks = 0;
  std::int64_t energyCostMwt = 0;
  /// fnv1a64 of the schedule text, fixed-width hex — the determinism
  /// handle: pawsd and `pawsc schedule` must produce identical digests.
  std::string scheduleDigest;
  /// io::scheduleToText of the result ("" when no schedule).
  std::string scheduleText;
  /// Wall-clock service time observed by the daemon, microseconds.
  std::int64_t serviceUs = 0;

  [[nodiscard]] bool succeeded() const {
    return outcome == "ok" || outcome == "anytime";
  }
};

/// Renders one response JSON document (schema 1).
std::string toJson(const Response& response);

/// Parses a kResponse payload (client side). False on unparseable JSON or
/// wrong schema.
bool responseFromJson(std::string_view payload, Response& out);

/// Fixed-width hex fnv1a64 of schedule text — the cross-binary
/// determinism digest (also computed by `pawsc schedule --digest`).
std::string scheduleDigest(std::string_view scheduleText);

}  // namespace paws::serve
