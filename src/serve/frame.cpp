#include "serve/frame.hpp"

#include <cstring>

#include "base/check.hpp"

namespace paws::serve {

namespace {

constexpr char kMagic[4] = {'P', 'A', 'W', 'S'};

bool validType(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kRequest) &&
         t <= static_cast<std::uint8_t>(FrameType::kMetricsResponse);
}

}  // namespace

std::string encodeFrame(FrameType type, std::string_view payload) {
  PAWS_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                 "frame payload exceeds kMaxPayloadBytes");
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof kMagic);
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  out.push_back('\0');  // reserved
  out.push_back('\0');
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out.append(payload.data(), payload.size());
  return out;
}

bool FrameDecoder::feed(const char* data, std::size_t n) {
  if (failed_) return false;
  // A peer streaming unbounded garbage without ever completing a frame
  // must not grow the buffer forever: header + max payload is the most
  // one well-formed frame can occupy.
  if (buffer_.size() + n > kHeaderBytes + kMaxPayloadBytes + kHeaderBytes) {
    fail("oversized");
    return false;
  }
  buffer_.insert(buffer_.end(), data, data + n);
  drain();
  return !failed_;
}

bool FrameDecoder::next(Frame& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

void FrameDecoder::fail(const char* reason) {
  failed_ = true;
  error_ = reason;
  buffer_.clear();
}

void FrameDecoder::drain() {
  while (buffer_.size() >= kHeaderBytes) {
    if (std::memcmp(buffer_.data(), kMagic, sizeof kMagic) != 0) {
      fail("bad_magic");
      return;
    }
    const std::uint8_t version = static_cast<std::uint8_t>(buffer_[4]);
    const std::uint8_t type = static_cast<std::uint8_t>(buffer_[5]);
    if (version != kProtocolVersion) {
      fail("bad_version");
      return;
    }
    if (!validType(type)) {
      fail("bad_type");
      return;
    }
    if (buffer_[6] != 0 || buffer_[7] != 0) {
      fail("bad_reserved");
      return;
    }
    const std::uint32_t len =
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[8]))
         << 24) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[9]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[10]))
         << 8) |
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer_[11]));
    if (len > kMaxPayloadBytes) {
      fail("oversized");
      return;
    }
    if (buffer_.size() < kHeaderBytes + len) return;  // wait for more bytes
    Frame f;
    f.type = static_cast<FrameType>(type);
    f.payload.assign(buffer_.data() + kHeaderBytes, len);
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(
                                        kHeaderBytes + len));
    ready_.push_back(std::move(f));
  }
}

}  // namespace paws::serve
