#include "serve/protocol.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "base/hash.hpp"
#include "obs/json.hpp"

namespace paws::serve {

namespace {

constexpr std::string_view kPreamble = "paws-request/1";
constexpr std::string_view kSeparator = "---";

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Takes the next line off `rest` (without its newline). Returns false at
/// end of input.
bool nextLine(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) return false;
  const std::size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, nl);
    rest.remove_prefix(nl + 1);
  }
  return true;
}

bool parseInt64(std::string_view s, std::int64_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool knownScheduler(std::string_view name) {
  return name == "pipeline" || name == "serial" || name == "list" ||
         name == "optimal";
}

ParseRequestResult failRequest(const char* reason) {
  ParseRequestResult r;
  r.error = reason;
  return r;
}

}  // namespace

ParseRequestResult parseRequest(std::string_view payload) {
  std::string_view rest = payload;
  std::string_view line;
  if (!nextLine(rest, line) || trimmed(line) != kPreamble) {
    return failRequest("bad_preamble");
  }
  ParseRequestResult result;
  Request& req = result.request;
  std::size_t headerLines = 0;
  bool sawSeparator = false;
  while (nextLine(rest, line)) {
    if (line.size() > kMaxHeaderLineBytes) {
      return failRequest("header_too_long");
    }
    const std::string_view t = trimmed(line);
    if (t == kSeparator) {
      sawSeparator = true;
      break;
    }
    if (t.empty()) continue;
    if (++headerLines > kMaxHeaderLines) {
      return failRequest("too_many_headers");
    }
    const std::size_t colon = t.find(':');
    if (colon == std::string_view::npos) continue;  // tolerated, ignored
    const std::string_view key = trimmed(t.substr(0, colon));
    const std::string_view value = trimmed(t.substr(colon + 1));
    if (key == "scheduler") {
      if (!knownScheduler(value)) return failRequest("bad_scheduler");
      req.scheduler = std::string(value);
    } else if (key == "timeout_ms") {
      std::int64_t ms = 0;
      if (!parseInt64(value, ms) || ms < 0 || ms > kMaxClientTimeoutMs) {
        return failRequest("bad_timeout");
      }
      req.timeoutMs = ms;
    } else if (key == "trials") {
      std::int64_t n = 0;
      if (!parseInt64(value, n) || n < 1 || n > 64) {
        return failRequest("bad_trials");
      }
      req.trials = static_cast<std::uint32_t>(n);
    }
    // Unknown keys: ignored for forward compatibility.
  }
  if (!sawSeparator) return failRequest("missing_separator");
  if (trimmed(rest).empty()) return failRequest("empty_problem");
  req.problemText = std::string(rest);
  result.ok = true;
  return result;
}

std::string formatRequest(const Request& req) {
  std::ostringstream os;
  os << kPreamble << "\n";
  os << "scheduler: " << req.scheduler << "\n";
  if (req.timeoutMs > 0) os << "timeout_ms: " << req.timeoutMs << "\n";
  os << "trials: " << req.trials << "\n";
  os << kSeparator << "\n";
  os << req.problemText;
  return os.str();
}

std::string toJson(const Response& r) {
  std::ostringstream os;
  os << "{\"schema\": 1"
     << ", \"outcome\": " << obs::json::escaped(r.outcome)
     << ", \"reason\": " << obs::json::escaped(r.reason)
     << ", \"mode\": " << obs::json::escaped(r.mode)
     << ", \"degraded\": " << (r.degraded ? "true" : "false")
     << ", \"cache_hit\": " << (r.cacheHit ? "true" : "false")
     << ", \"finish_ticks\": " << r.finishTicks
     << ", \"energy_cost_mwt\": " << r.energyCostMwt
     << ", \"schedule_digest\": " << obs::json::escaped(r.scheduleDigest)
     << ", \"schedule\": " << obs::json::escaped(r.scheduleText)
     << ", \"service_us\": " << r.serviceUs << "}\n";
  return os.str();
}

bool responseFromJson(std::string_view payload, Response& out) {
  const obs::json::ParseResult parsed = obs::json::parse(payload);
  if (!parsed.ok || !parsed.value.isObject()) return false;
  const obs::json::Value* schema = parsed.value.find("schema");
  if (schema == nullptr || schema->asInt() != 1) return false;
  Response r;
  if (const auto* f = parsed.value.find("outcome")) r.outcome = f->asString();
  if (const auto* f = parsed.value.find("reason")) r.reason = f->asString();
  if (const auto* f = parsed.value.find("mode")) r.mode = f->asString();
  if (const auto* f = parsed.value.find("degraded")) r.degraded = f->asBool();
  if (const auto* f = parsed.value.find("cache_hit")) r.cacheHit = f->asBool();
  if (const auto* f = parsed.value.find("finish_ticks")) {
    r.finishTicks = f->asInt();
  }
  if (const auto* f = parsed.value.find("energy_cost_mwt")) {
    r.energyCostMwt = f->asInt();
  }
  if (const auto* f = parsed.value.find("schedule_digest")) {
    r.scheduleDigest = f->asString();
  }
  if (const auto* f = parsed.value.find("schedule")) {
    r.scheduleText = f->asString();
  }
  if (const auto* f = parsed.value.find("service_us")) {
    r.serviceUs = f->asInt();
  }
  out = std::move(r);
  return true;
}

std::string scheduleDigest(std::string_view scheduleText) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(scheduleText)));
  return buf;
}

}  // namespace paws::serve
