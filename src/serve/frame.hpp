// pawsd wire frames — the length-prefixed envelope every request and
// response travels in.
//
// Layout (12-byte header, all multi-byte fields big-endian):
//
//   offset  size  field
//        0     4  magic     "PAWS"
//        4     1  version   1
//        5     1  type      FrameType
//        6     2  reserved  must be 0
//        8     4  length    payload byte count, <= kMaxPayloadBytes
//       12     N  payload
//
// The decoder is incremental and hostile-input-first: bytes arrive in
// whatever fragments the socket produces, frames are pulled out as they
// complete, and the first malformed header *latches* the decoder into a
// failed state (a peer that desynchronized once can never be trusted to
// re-synchronize — the connection must be dropped with a structured
// `invalid` response). Payload size is capped at io::kMaxSourceBytes
// before any allocation happens, so a hostile length field costs 12 bytes
// of inspection, not 4 GB of memory. This parser is the fuzz surface of
// fuzz/fuzz_pawsd_frame.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "io/lexer.hpp"

namespace paws::serve {

enum class FrameType : std::uint8_t {
  kRequest = 1,          ///< client -> server: schedule this problem
  kResponse = 2,         ///< server -> client: response JSON
  kMetricsRequest = 3,   ///< client -> server: scrape request (no payload)
  kMetricsResponse = 4,  ///< server -> client: OpenMetrics text
};

struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

inline constexpr std::size_t kHeaderBytes = 12;
inline constexpr std::uint8_t kProtocolVersion = 1;
/// Reuses the fuzz-hardened parser ceiling: a frame may carry at most as
/// many bytes as the .paws parser would accept from a file.
inline constexpr std::size_t kMaxPayloadBytes = io::kMaxSourceBytes;

/// Serializes one frame (header + payload). The inverse of FrameDecoder.
std::string encodeFrame(FrameType type, std::string_view payload);

/// Incremental decoder: feed() arbitrary byte fragments, next() pulls
/// completed frames in arrival order. The first malformed header latches
/// failed() with a reason; further feed()s are ignored.
class FrameDecoder {
 public:
  /// Appends received bytes. Returns false once the decoder has failed
  /// (the bytes are discarded).
  bool feed(const char* data, std::size_t n);
  bool feed(std::string_view bytes) { return feed(bytes.data(), bytes.size()); }

  /// Pops the oldest completed frame into `out`.
  [[nodiscard]] bool next(Frame& out);

  [[nodiscard]] bool failed() const { return failed_; }
  /// Stable machine-readable reason: bad_magic | bad_version | bad_type |
  /// bad_reserved | oversized. Empty while healthy.
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Bytes buffered but not yet assembled into a frame (partial header or
  /// partial payload) — the slow-writer watchdog reads this to tell "idle
  /// between requests" from "stalled mid-frame".
  [[nodiscard]] std::size_t pendingBytes() const { return buffer_.size(); }

 private:
  void fail(const char* reason);
  /// Attempts to peel completed frames off the front of buffer_.
  void drain();

  std::vector<char> buffer_;
  std::deque<Frame> ready_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace paws::serve
