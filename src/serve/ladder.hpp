// ServiceLadder — pawsd's overload-shedding mode ladder.
//
// The serving-side analogue of model/mode_policy.hpp: an ordered set of
// rungs, escalation on pressure triggers, slow de-escalation on sustained
// calm. Where the runtime executor sheds *tasks* when power collapses,
// the daemon sheds *work classes* when the queue collapses:
//
//   healthy    — serve everything as requested
//   degraded   — downgrade `optimal` requests to the pipeline heuristic
//                (answers stay correct, just heuristic-grade); everything
//                else unchanged
//   cache_only — serve exact cache hits only; anything needing a solve is
//                refused with a structured `overloaded`/`shedding`
//   reject_new — refuse all new requests (in-flight ones finish)
//
// Pressure signals, evaluated per request arrival (and on a periodic
// tick so an idle-but-full daemon still de-escalates): intake queue depth
// as a fraction of capacity, and the p99 of recent service times against
// the server's default budget. Escalation jumps straight to the rung the
// signals demand; de-escalation climbs ONE rung after
// `deescalateAfterClean` consecutive calm observations — fast in, slow
// out, the standard anti-flap shape (and the same shape ModePolicy uses).
//
// Thread-safe: one mutex, held for nanoseconds; every connection thread
// consults the ladder on its own.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace paws::serve {

enum class ServiceMode : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kCacheOnly = 2,
  kRejectNew = 3,
};

const char* toString(ServiceMode mode);

struct LadderConfig {
  /// Queue-depth permille of capacity at which each rung engages. A
  /// depth >= rejectPermille of capacity jumps straight to reject_new.
  std::uint32_t degradePermille = 500;
  std::uint32_t cacheOnlyPermille = 800;
  std::uint32_t rejectPermille = 1000;
  /// p99 service time beyond this multiple of the default budget also
  /// forces at least degraded (0 = disable the latency trigger).
  std::uint32_t p99BudgetMultiple = 2;
  /// Calm observations required to climb one rung back up.
  std::uint32_t deescalateAfterClean = 8;
};

/// One ladder observation: the inputs the rung decision is made from.
struct LadderSignals {
  std::size_t queueDepth = 0;
  std::size_t queueCapacity = 0;  ///< 0 = unbounded (depth triggers off)
  std::int64_t p99ServiceUs = 0;
  std::int64_t defaultBudgetUs = 0;
};

struct ModeChange {
  bool changed = false;
  ServiceMode from = ServiceMode::kHealthy;
  ServiceMode to = ServiceMode::kHealthy;
};

class ServiceLadder {
 public:
  explicit ServiceLadder(LadderConfig config = {}) : config_(config) {}

  /// Feeds one observation; returns the transition, if any. The caller
  /// (the daemon) turns a `changed` result into a trace event + counter.
  ModeChange observe(const LadderSignals& signals);

  [[nodiscard]] ServiceMode mode() const {
    std::lock_guard<std::mutex> lock(mu_);
    return mode_;
  }

  /// Records one completed request's service time into the p99 window.
  void recordServiceUs(std::int64_t us);
  /// Nearest-rank p99 over the sliding window (0 while empty).
  [[nodiscard]] std::int64_t p99ServiceUs() const;

  [[nodiscard]] const LadderConfig& config() const { return config_; }

 private:
  /// The rung the signals demand right now, ignoring hysteresis.
  [[nodiscard]] ServiceMode demandOf(const LadderSignals& s) const;

  LadderConfig config_;
  mutable std::mutex mu_;
  ServiceMode mode_ = ServiceMode::kHealthy;
  std::uint32_t cleanStreak_ = 0;

  /// Fixed-size ring of recent service times for the p99 probe.
  static constexpr std::size_t kWindow = 256;
  std::vector<std::int64_t> window_ = std::vector<std::int64_t>(kWindow, 0);
  std::size_t windowUsed_ = 0;
  std::size_t windowNext_ = 0;
};

}  // namespace paws::serve
