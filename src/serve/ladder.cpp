#include "serve/ladder.hpp"

#include <algorithm>

namespace paws::serve {

const char* toString(ServiceMode mode) {
  switch (mode) {
    case ServiceMode::kHealthy:
      return "healthy";
    case ServiceMode::kDegraded:
      return "degraded";
    case ServiceMode::kCacheOnly:
      return "cache_only";
    case ServiceMode::kRejectNew:
      return "reject_new";
  }
  return "?";
}

ServiceMode ServiceLadder::demandOf(const LadderSignals& s) const {
  ServiceMode demand = ServiceMode::kHealthy;
  if (s.queueCapacity > 0) {
    const std::uint64_t permille =
        static_cast<std::uint64_t>(s.queueDepth) * 1000u / s.queueCapacity;
    if (permille >= config_.rejectPermille) {
      demand = ServiceMode::kRejectNew;
    } else if (permille >= config_.cacheOnlyPermille) {
      demand = ServiceMode::kCacheOnly;
    } else if (permille >= config_.degradePermille) {
      demand = ServiceMode::kDegraded;
    }
  }
  // Latency trigger: a p99 blowing through the budget means the queue
  // depth alone understates the pressure (slow requests, not many
  // requests) — force at least the degraded rung.
  if (config_.p99BudgetMultiple > 0 && s.defaultBudgetUs > 0 &&
      s.p99ServiceUs >
          s.defaultBudgetUs *
              static_cast<std::int64_t>(config_.p99BudgetMultiple)) {
    demand = std::max(demand, ServiceMode::kDegraded);
  }
  return demand;
}

ModeChange ServiceLadder::observe(const LadderSignals& signals) {
  const ServiceMode demand = demandOf(signals);
  std::lock_guard<std::mutex> lock(mu_);
  ModeChange change;
  change.from = mode_;
  if (demand > mode_) {
    // Escalate straight to what the signals demand: under a burst, the
    // intermediate rungs would each cost a batch of mis-admitted work.
    mode_ = demand;
    cleanStreak_ = 0;
  } else if (demand < mode_) {
    if (++cleanStreak_ >= config_.deescalateAfterClean) {
      // One rung at a time on the way down — anti-flap hysteresis.
      mode_ = static_cast<ServiceMode>(static_cast<std::uint8_t>(mode_) - 1);
      cleanStreak_ = 0;
    }
  } else {
    cleanStreak_ = 0;
  }
  change.to = mode_;
  change.changed = change.from != change.to;
  return change;
}

void ServiceLadder::recordServiceUs(std::int64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  window_[windowNext_] = us;
  windowNext_ = (windowNext_ + 1) % kWindow;
  windowUsed_ = std::min(windowUsed_ + 1, kWindow);
}

std::int64_t ServiceLadder::p99ServiceUs() const {
  std::vector<std::int64_t> sample;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (windowUsed_ == 0) return 0;
    sample.assign(window_.begin(),
                  window_.begin() + static_cast<std::ptrdiff_t>(windowUsed_));
  }
  // Nearest-rank p99 on the copied sample, outside the lock.
  std::sort(sample.begin(), sample.end());
  const std::size_t rank =
      (sample.size() * 99 + 99) / 100;  // ceil(n * 0.99), 1-based
  return sample[std::min(rank, sample.size()) - 1];
}

}  // namespace paws::serve
