#include "cache/cached_solve.hpp"

#include <optional>
#include <utility>

#include "cache/canonical.hpp"
#include "exec/jobs.hpp"
#include "io/schedule_io.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/min_power_scheduler.hpp"
#include "sched/polish.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/repair.hpp"
#include "sched/serial_scheduler.hpp"
#include "validate/validator.hpp"

namespace paws::cache {

namespace {

/// The exhaustive scheduler's default horizon (serial span plus largest
/// declared separation), recomputed here so the warm-start seed check —
/// "does the heuristic schedule fit the search horizon?" — matches the
/// search it seeds.
Time defaultHorizon(const Problem& problem) {
  Duration total = Duration::zero();
  for (TaskId v : problem.taskIds()) total += problem.task(v).delay;
  Duration maxSep = Duration::zero();
  for (const TimingConstraint& c : problem.constraints()) {
    maxSep = std::max(maxSep, c.separation);
  }
  return Time::zero() + total + maxSep;
}

/// Strict lexicographic (energy cost above Pmin, finish) comparison —
/// the objective order the exhaustive search optimizes.
bool lexBetter(const Schedule& a, const Schedule& b) {
  const Problem& p = a.problem();
  const Energy ca = a.energyCost(p.minPower());
  const Energy cb = b.energyCost(p.minPower());
  return ca < cb || (ca == cb && a.finish() < b.finish());
}

/// Rebinds a cached schedule onto `problem` (by task name) and checks it
/// with the independent validator. Any failure — including the
/// astronomically unlikely 64-bit hash collision — reads as "nothing
/// usable", never as a wrong answer.
std::optional<Schedule> rebind(const CacheEntry& entry,
                               const Problem& problem) {
  // Fast path: entries produced in this process carry the assignment
  // pre-split as (name, ticks) pairs — bind by name lookup, no text
  // parse. Any mismatch (task count, unknown name, duplicate) falls
  // through to the text parse, which applies its own full checks.
  if (entry.startsByName.size() == problem.numTasks()) {
    std::vector<Time> starts(problem.numVertices(), Time::zero());
    std::vector<bool> seen(problem.numVertices(), false);
    bool ok = true;
    for (const auto& [name, ticks] : entry.startsByName) {
      const std::optional<TaskId> id = problem.findTask(name);
      if (!id.has_value() || seen[id->index()]) {
        ok = false;
        break;
      }
      seen[id->index()] = true;
      starts[id->index()] = Time(ticks);
    }
    if (ok) {
      Schedule schedule(&problem, std::move(starts));
      if (ScheduleValidator(problem).validate(schedule).valid()) {
        return schedule;
      }
      return std::nullopt;
    }
  }
  io::ScheduleParseResult parsed =
      io::parseSchedule(entry.scheduleText, problem);
  if (!parsed.ok()) return std::nullopt;
  if (!ScheduleValidator(problem).validate(*parsed.schedule).valid()) {
    return std::nullopt;
  }
  return std::move(parsed.schedule);
}

void insertClean(ScheduleCache& cache, const CacheKey& key,
                 std::uint64_t structuralHash, const Problem& problem,
                 const std::string& label, const ScheduleResult& r,
                 std::uint64_t nodesExplored, bool provenOptimal) {
  CacheEntry entry;
  entry.scheduleText = io::scheduleToText(*r.schedule, label);
  entry.startsByName.reserve(problem.numTasks());
  for (TaskId v : problem.taskIds()) {
    entry.startsByName.emplace_back(problem.task(v).name,
                                    r.schedule->start(v).ticks());
  }
  entry.costMwt =
      r.schedule->energyCost(problem.minPower()).milliwattTicks();
  entry.finish = r.schedule->finish();
  entry.provenOptimal = provenOptimal;
  entry.structuralHash = structuralHash;
  entry.stats = r.stats;
  entry.nodesExplored = nodesExplored;
  cache.insert(key, std::move(entry));
}

/// Warm-start pair handed to the exhaustive search: the heuristic
/// schedule's cost and finish (both needed — the finish arms the local
/// cost-tie cut, see ExhaustiveOptions::initialIncumbentFinish).
struct WarmSeed {
  Energy cost;
  Time finish;
};

ScheduleResult runCold(const Problem& problem, const SolveSpec& spec,
                       std::optional<WarmSeed> seed, SolveInfo& info) {
  if (spec.scheduler == "serial") return SerialScheduler(problem).schedule();
  if (spec.scheduler == "list") return ListScheduler(problem).schedule();
  if (spec.scheduler == "optimal") {
    ExhaustiveOptions options;
    options.jobs = spec.jobs == 0 ? exec::resolveJobs(0) : spec.jobs;
    options.obs = spec.obs;
    options.budget = spec.budget;
    if (seed.has_value()) {
      options.initialIncumbent = seed->cost;
      options.initialIncumbentFinish = seed->finish;
    }
    ExhaustiveScheduler optimal(problem, options);
    ScheduleResult r = optimal.schedule();
    info.stopReason = optimal.outcome().stopReason;
    info.provenOptimal = optimal.outcome().provenOptimal;
    info.nodesExplored = optimal.outcome().nodesExplored;
    return r;
  }
  PowerAwareOptions options;
  options.trials = spec.trials;
  options.obs = spec.obs;
  options.budget = spec.budget;
  return PowerAwareScheduler(problem, options).schedule();
}

}  // namespace

ScheduleResult solveThroughCache(ScheduleCache* cache, const Problem& problem,
                                 const SolveSpec& spec, SolveInfo* infoOut) {
  SolveInfo info;
  if (cache == nullptr) {
    // No cache: the historical dispatch, bit-for-bit.
    ScheduleResult r = runCold(problem, spec, std::nullopt, info);
    if (infoOut != nullptr) *infoOut = info;
    return r;
  }

  // Key-only canonicalization: the exact-hit probe needs just the hash.
  // The structural skeleton (near-miss lookup, insertion) is recomputed
  // below, only once rung 1 has missed.
  CanonicalForm canonical = canonicalize(problem, CanonicalParts::kKeyOnly);
  const CacheKey key{canonical.hash,
                     optionsFingerprint(spec.scheduler, spec.trials)};

  // Rung 1: exact hit.
  if (std::optional<ScheduleResult> served =
          tryServeExact(*cache, problem, spec, &info)) {
    if (infoOut != nullptr) *infoOut = info;
    return std::move(*served);
  }

  // Past the exact probe: the structural hash is needed from here on
  // (near-miss lookup now, insertion after the solve).
  canonical = canonicalize(problem, CanonicalParts::kFull);

  // Rung 2: near-miss revalidation — pipeline only. Serving a structurally
  // matching but numerically different entry is a heuristic answer, which
  // is exactly the pipeline's contract and exactly wrong for `optimal`.
  if (spec.nearMiss && spec.scheduler == "pipeline") {
    if (std::optional<CacheEntry> candidate =
            cache->lookupStructural(canonical.structuralHash, key.optionsFp)) {
      io::ScheduleParseResult parsed =
          io::parseSchedule(candidate->scheduleText, problem);
      if (parsed.ok()) {
        ScheduleResult served;
        if (ScheduleValidator(problem).validate(*parsed.schedule).valid()) {
          // Still valid under the new limits: keep the plan, polish the
          // soft objective under the (possibly changed) Pmin with a
          // warm-started min-power improvement pass.
          MinPowerOptions options;
          options.initialStarts = parsed.schedule->starts();
          options.obs = spec.obs;
          options.budget = spec.budget;
          served = MinPowerScheduler(problem, options).schedule();
        } else {
          // Invalid under the delta (e.g. tightened Pmax): rebuild from
          // the cached plan through the repair machinery. now = 0 freezes
          // nothing — every task may move, but the task set and plan
          // structure carry over.
          RepairInput input;
          input.updated = &problem;
          input.current = &*parsed.schedule;
          input.now = Time::zero();
          PowerAwareOptions options;
          options.trials = spec.trials;
          options.obs = spec.obs;
          options.budget = spec.budget;
          served = repairSchedule(input, options);
        }
        if (served.ok() &&
            ScheduleValidator(problem).validate(*served.schedule).valid()) {
          cache->noteRevalidation();
          info.revalidated = true;
          served.message = "revalidated from schedule cache (near miss)";
          insertClean(*cache, key, canonical.structuralHash, problem,
                      spec.scheduler, served, /*nodesExplored=*/0,
                      /*provenOptimal=*/false);
          if (infoOut != nullptr) *infoOut = info;
          return served;
        }
      }
    }
  }

  // Rung 3: warm-start seed for the exhaustive search — a cached pipeline
  // schedule for this exact problem, or the cheap pipeline heuristic run
  // fresh. Its cost is an upper bound on the optimum whenever the schedule
  // is valid and fits the search horizon, so seeding keeps the result
  // byte-identical while pruning from node 0.
  std::optional<WarmSeed> seed;
  if (spec.warmStart && spec.scheduler == "optimal") {
    const Time horizon = defaultHorizon(problem);
    const CacheKey pipelineKey{canonical.hash,
                               optionsFingerprint("pipeline", spec.trials)};
    std::optional<Schedule> heuristic;
    ScheduleResult pipelineResult;
    if (std::optional<CacheEntry> entry = cache->peek(pipelineKey)) {
      heuristic = rebind(*entry, problem);
    }
    if (!heuristic.has_value()) {
      // The seeding run is an internal detail of this request: it may
      // publish effort metrics, but its improvement curve must not pollute
      // the search's incumbent trajectory.
      SolveSpec seedSpec;
      seedSpec.scheduler = "pipeline";
      seedSpec.trials = spec.trials;
      seedSpec.obs = spec.obs;
      seedSpec.obs.incumbents = nullptr;
      seedSpec.budget = spec.budget;
      SolveInfo ignored;
      pipelineResult = runCold(problem, seedSpec, std::nullopt, ignored);
      if (pipelineResult.ok() &&
          ScheduleValidator(problem)
              .validate(*pipelineResult.schedule)
              .valid()) {
        heuristic = *pipelineResult.schedule;
        insertClean(*cache, pipelineKey, canonical.structuralHash, problem,
                    "pipeline", pipelineResult, /*nodesExplored=*/0,
                    /*provenOptimal=*/false);
      }
    }
    // The pipeline compacts, but the lex optimum often spreads tasks out
    // (overlap below Pmin is free) — the serial schedule is frequently
    // at or near the optimal cost when it fits the horizon. Take the
    // lex-best valid in-horizon candidate, then polish it: the tighter
    // the seed, the more of the search's improvement ladder is pruned.
    if (ScheduleResult serial = SerialScheduler(problem).schedule();
        serial.ok() && serial.schedule->finish() <= horizon &&
        ScheduleValidator(problem).validate(*serial.schedule).valid()) {
      if (!heuristic.has_value() || lexBetter(*serial.schedule, *heuristic)) {
        heuristic = *serial.schedule;
      }
    }
    if (heuristic.has_value() && heuristic->finish() <= horizon) {
      PolishOptions polishOptions;
      polishOptions.horizon = horizon;
      Schedule polished = polishSchedule(problem, *heuristic, polishOptions);
      if (polished.finish() <= horizon &&
          ScheduleValidator(problem).validate(polished).valid() &&
          !lexBetter(*heuristic, polished)) {
        heuristic = std::move(polished);
      }
      seed = WarmSeed{heuristic->energyCost(problem.minPower()),
                      heuristic->finish()};
      info.warmStarted = true;
      cache->noteWarmStart();
    }
  }

  ScheduleResult r = runCold(problem, spec, seed, info);

  // Insert only clean, fully-solved results: no budget/deadline trips
  // (those are anytime answers a fresh run would beat) and, for the
  // optimality oracle, only proven-optimal verdicts.
  const bool clean = r.ok() && info.stopReason == guard::StopReason::kNone &&
                     (spec.scheduler != "optimal" || info.provenOptimal);
  if (clean) {
    insertClean(*cache, key, canonical.structuralHash, problem,
                spec.scheduler, r, info.nodesExplored, info.provenOptimal);
  }
  if (infoOut != nullptr) *infoOut = info;
  return r;
}

std::optional<ScheduleResult> tryServeExact(ScheduleCache& cache,
                                            const Problem& problem,
                                            const SolveSpec& spec,
                                            SolveInfo* infoOut) {
  const CanonicalForm canonical =
      canonicalize(problem, CanonicalParts::kKeyOnly);
  const CacheKey key{canonical.hash,
                     optionsFingerprint(spec.scheduler, spec.trials)};
  if (std::optional<CacheEntry> entry = cache.lookup(key)) {
    if (std::optional<Schedule> schedule = rebind(*entry, problem)) {
      if (infoOut != nullptr) {
        infoOut->cacheHit = true;
        infoOut->provenOptimal = entry->provenOptimal;
      }
      ScheduleResult r;
      r.status = SchedStatus::kOk;
      r.schedule = std::move(schedule);
      r.stats = entry->stats;
      r.message = "served from schedule cache";
      return r;
    }
  }
  return std::nullopt;
}

}  // namespace paws::cache
