#include "cache/schedule_cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/json.hpp"

namespace paws::cache {

namespace {

/// Hashes render as fixed-width hex strings: JSON numbers round-trip
/// through doubles in sloppy readers, and the report format already made
/// this choice for problem_hash.
std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Strict hex: false on empty, overlong, or non-hex input — a corrupt key
/// must skip its entry, not silently alias to key 0.
bool parseHex64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  out = v;
  return true;
}

/// Defensive cap on persisted entries: a multi-gigabyte cache file should
/// degrade to a partial load, not an allocation storm.
constexpr std::size_t kMaxLoadEntries = 100000;

}  // namespace

ScheduleCache::ScheduleCache(std::size_t capacity, std::size_t shards)
    : numShards_(shards == 0 ? 1 : shards),
      capacityPerShard_((capacity == 0 ? 1 : capacity + numShards_ - 1) /
                        numShards_),
      shards_(std::make_unique<Shard[]>(numShards_)) {
  if (capacityPerShard_ == 0) capacityPerShard_ = 1;
}

std::optional<CacheEntry> ScheduleCache::lookup(const CacheKey& key) {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

std::optional<CacheEntry> ScheduleCache::peek(const CacheKey& key) const {
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  return it->second->second;
}

void ScheduleCache::insert(const CacheKey& key, CacheEntry entry) {
  const std::uint64_t structuralHash = entry.structuralHash;
  {
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(entry);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      if (shard.map.size() >= capacityPerShard_) {
        const CacheKey& victim = shard.lru.back().first;
        shard.map.erase(victim);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      shard.lru.emplace_front(key, std::move(entry));
      shard.map.emplace(key, shard.lru.begin());
    }
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(structMu_);
  structIndex_[CacheKey{structuralHash, key.optionsFp}] = key;
}

std::optional<CacheEntry> ScheduleCache::lookupStructural(
    std::uint64_t structuralHash, std::uint64_t optionsFp) {
  CacheKey primary;
  {
    std::lock_guard<std::mutex> lock(structMu_);
    auto it = structIndex_.find(CacheKey{structuralHash, optionsFp});
    if (it == structIndex_.end()) return std::nullopt;
    primary = it->second;
  }
  Shard& shard = shardFor(primary);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(primary);
  if (it == shard.map.end()) return std::nullopt;  // evicted since indexed
  return it->second->second;
}

CacheStats ScheduleCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.revalidations = revalidations_.load(std::memory_order_relaxed);
  s.warmStarts = warmStarts_.load(std::memory_order_relaxed);
  s.loadRejectedFiles = loadRejectedFiles_.load(std::memory_order_relaxed);
  s.loadSkippedEntries = loadSkippedEntries_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ScheduleCache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < numShards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].map.size();
  }
  return total;
}

void ScheduleCache::exportMetrics(obs::MetricsRegistry& registry) const {
  const CacheStats s = stats();
  registry.add("cache.hits", s.hits);
  registry.add("cache.misses", s.misses);
  registry.add("cache.insertions", s.insertions);
  registry.add("cache.evictions", s.evictions);
  registry.add("cache.revalidations", s.revalidations);
  registry.add("cache.warm_starts", s.warmStarts);
  registry.add("cache.load_rejected_files", s.loadRejectedFiles);
  registry.add("cache.load_skipped_entries", s.loadSkippedEntries);
}

bool ScheduleCache::save(const std::string& path, std::string* error) const {
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"entries\": [";
  bool first = true;
  // Oldest first per shard, so load()'s insert order recreates recency.
  for (std::size_t i = 0; i < numShards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      const CacheKey& key = it->first;
      const CacheEntry& e = it->second;
      if (!first) os << ",";
      first = false;
      os << "\n    {\"problem_hash\": "
         << obs::json::escaped(hex64(key.problemHash))
         << ", \"options_fp\": " << obs::json::escaped(hex64(key.optionsFp))
         << ", \"structural_hash\": "
         << obs::json::escaped(hex64(e.structuralHash))
         << ", \"cost_mwt\": " << e.costMwt
         << ", \"finish\": " << e.finish.ticks()
         << ", \"proven_optimal\": " << (e.provenOptimal ? "true" : "false")
         << ", \"lp_runs\": " << e.stats.longestPathRuns
         << ", \"backtracks\": " << e.stats.backtracks
         << ", \"delays\": " << e.stats.delays
         << ", \"locks\": " << e.stats.locks
         << ", \"recursions\": " << e.stats.recursions
         << ", \"scans\": " << e.stats.scans
         << ", \"improvements\": " << e.stats.improvements
         << ", \"nodes\": " << e.nodesExplored
         << ", \"schedule\": " << obs::json::escaped(e.scheduleText) << "}";
    }
  }
  os << "\n  ]\n}\n";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << os.str();
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

bool ScheduleCache::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) error->clear();
    return false;  // no cache file yet: the normal cold start
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    loadRejectedFiles_.fetch_add(1, std::memory_order_relaxed);
    if (error != nullptr) *error = "read error on cache file " + path;
    return false;
  }
  const obs::json::ParseResult parsed = obs::json::parse(buffer.str());
  if (!parsed.ok || !parsed.value.isObject()) {
    loadRejectedFiles_.fetch_add(1, std::memory_order_relaxed);
    if (error != nullptr) {
      *error = "unparseable cache file " + path +
               (parsed.ok ? "" : ": " + parsed.error);
    }
    return false;
  }
  const obs::json::Value* schema = parsed.value.find("schema");
  if (schema == nullptr || schema->asInt() != 1) {
    // Wrong *or newer* schema: refuse the whole file rather than guess at
    // fields a future writer may have re-defined.
    loadRejectedFiles_.fetch_add(1, std::memory_order_relaxed);
    if (error != nullptr) *error = "unknown cache schema in " + path;
    return false;
  }
  const obs::json::Value* entries = parsed.value.find("entries");
  if (entries == nullptr || !entries->isArray()) return true;  // empty
  std::size_t loaded = 0;
  for (const obs::json::Value& v : entries->items) {
    if (loaded >= kMaxLoadEntries) {
      loadSkippedEntries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const obs::json::Value* ph = v.isObject() ? v.find("problem_hash") : nullptr;
    const obs::json::Value* fp = v.isObject() ? v.find("options_fp") : nullptr;
    const obs::json::Value* text = v.isObject() ? v.find("schedule") : nullptr;
    CacheKey key;
    if (ph == nullptr || fp == nullptr || text == nullptr ||
        !ph->isString() || !fp->isString() || !text->isString() ||
        !parseHex64(ph->asString(), key.problemHash) ||
        !parseHex64(fp->asString(), key.optionsFp)) {
      // Malformed entry: a structured skip, never a failed load.
      loadSkippedEntries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    CacheEntry e;
    e.scheduleText = text->asString();
    if (const auto* f = v.find("structural_hash")) {
      // Key fields gate the entry; a damaged structural hash only costs
      // the near-miss index, so degrade it to "absent" instead of
      // skipping an otherwise-servable entry.
      if (!parseHex64(f->asString(), e.structuralHash)) e.structuralHash = 0;
    }
    if (const auto* f = v.find("cost_mwt")) e.costMwt = f->asInt();
    if (const auto* f = v.find("finish")) e.finish = Time(f->asInt());
    if (const auto* f = v.find("proven_optimal")) {
      e.provenOptimal = f->asBool();
    }
    if (const auto* f = v.find("lp_runs")) e.stats.longestPathRuns = f->asUint();
    if (const auto* f = v.find("backtracks")) e.stats.backtracks = f->asUint();
    if (const auto* f = v.find("delays")) e.stats.delays = f->asUint();
    if (const auto* f = v.find("locks")) e.stats.locks = f->asUint();
    if (const auto* f = v.find("recursions")) e.stats.recursions = f->asUint();
    if (const auto* f = v.find("scans")) e.stats.scans = f->asUint();
    if (const auto* f = v.find("improvements")) {
      e.stats.improvements = f->asUint();
    }
    if (const auto* f = v.find("nodes")) e.nodesExplored = f->asUint();
    insert(key, std::move(e));
    ++loaded;
  }
  // Loading is bookkeeping, not traffic: leave hit/miss/insertion stats at
  // their pre-load values so the CLI reports only this run's activity.
  insertions_.fetch_sub(loaded, std::memory_order_relaxed);
  return true;
}

}  // namespace paws::cache
