// solveThroughCache — the cache-aware solve entry point.
//
// One function wraps the pawsc scheduler dispatch (pipeline / serial /
// list / optimal) with the full reuse ladder, cheapest rung first:
//
//   1. exact hit  — canonical key present: rebind the cached schedule by
//      task name, re-validate it against the querying problem (a 64-bit
//      hash collision must cost a miss, never a wrong answer) and serve.
//      Byte-identical to the solve that produced the entry, microseconds.
//   2. near-miss  — pipeline only: an entry with the same structural
//      skeleton but different limits / task costs. Rebind and validate
//      under the NEW problem; when still valid, polish with a MinPower
//      improvement pass warm-started from it (gap filling under the new
//      Pmin); when invalid, rebuild from it via repairSchedule. Either
//      way the served schedule is validator-checked against the querying
//      problem. Counted as cache.revalidations. Results are heuristic-
//      grade like the pipeline itself, but orders of magnitude cheaper
//      than a cold solve on near-duplicate traffic.
//   3. warm start — optimal only: a cold exhaustive solve is seeded with
//      `ExhaustiveOptions::{initialIncumbent, initialIncumbentFinish}`
//      from the lex-best of the pipeline heuristic (or a cached pipeline
//      entry) and the serial schedule, sharpened by polishSchedule, so
//      branch-and-bound prunes against a real (cost, finish) incumbent
//      from node 0. Byte-identical result, strictly fewer nodes. Counted
//      as cache.warm_starts.
//   4. cold solve — no cache, or nothing reusable.
//
// Clean, fully-solved results (status kOk, no budget/deadline trip, and
// for `optimal` a proven-optimal verdict) are inserted back. With
// `cache == nullptr` the function degrades to the plain dispatch and is
// behavior-identical to the historical pawsc runScheduler path.
#pragma once

#include <cstdint>
#include <string>

#include "cache/schedule_cache.hpp"
#include "guard/budget.hpp"
#include "model/problem.hpp"
#include "obs/context.hpp"
#include "sched/result.hpp"

namespace paws::cache {

struct SolveSpec {
  /// pawsc dispatch name: pipeline | serial | list | optimal.
  std::string scheduler = "pipeline";
  /// Pipeline restarts (PowerAwareOptions::trials).
  std::uint32_t trials = 4;
  /// Worker threads for the exhaustive search (already resolved; 0 is
  /// passed through to exec::resolveJobs).
  std::size_t jobs = 1;
  /// Seed cold exhaustive solves from the pipeline heuristic (rung 3).
  bool warmStart = true;
  /// Serve structural hits through revalidation/repair (rung 2).
  bool nearMiss = true;
  obs::ObsContext obs;
  guard::RunBudget budget;
};

/// How the result was produced — pawsc reporting reads this.
struct SolveInfo {
  bool cacheHit = false;      ///< served from an exact cache entry
  bool revalidated = false;   ///< served through the near-miss path
  bool warmStarted = false;   ///< cold solve ran with a seeded incumbent
  /// Exhaustive verdict (true for serves of proven-optimal entries).
  bool provenOptimal = false;
  /// Stop reason of a cold optimal solve (kNone for serves).
  guard::StopReason stopReason = guard::StopReason::kNone;
  /// Nodes the cold optimal solve explored (0 for serves).
  std::uint64_t nodesExplored = 0;
  [[nodiscard]] bool servedFromCache() const {
    return cacheHit || revalidated;
  }
};

/// Solves `problem` through `cache` (nullptr = always cold). The returned
/// schedule is bound to `problem`.
ScheduleResult solveThroughCache(ScheduleCache* cache, const Problem& problem,
                                 const SolveSpec& spec,
                                 SolveInfo* infoOut = nullptr);

/// Rung 1 alone: serve an exact cache hit, or return nullopt WITHOUT
/// solving. This is pawsd's cache-only overload rung — under shedding the
/// daemon still answers repeated traffic in microseconds while refusing
/// anything that would cost a solve. Identical serve semantics to the
/// exact-hit rung of solveThroughCache (rebind by name + revalidate).
std::optional<ScheduleResult> tryServeExact(ScheduleCache& cache,
                                            const Problem& problem,
                                            const SolveSpec& spec,
                                            SolveInfo* infoOut = nullptr);

}  // namespace paws::cache
