#include "cache/canonical.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <vector>

#include "base/hash.hpp"
#include "graph/longest_path.hpp"

namespace paws::cache {

namespace {

// The canonical text is hashed on every cache probe, so rendering is on
// the hit path — plain string appends with to_chars instead of iostreams
// keep it an order of magnitude cheaper than the formatting would
// otherwise cost (the output bytes are identical).

void appendNum(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

/// Canonical spelling of a watt quantity: exact milliwatts, or "inf" for
/// the unbounded Pmax sentinel.
void appendMw(std::string& out, Watts w) {
  if (w == Watts::max()) {
    out += "inf";
  } else {
    appendNum(out, w.milliwatts());
  }
}

}  // namespace

CanonicalForm canonicalize(const Problem& problem, CanonicalParts parts) {
  const bool wantStructural = parts == CanonicalParts::kFull;
  // Task depth = longest-path distance from the anchor, a declaration-
  // order-free property of the constraint system. On a positive cycle the
  // distances are undefined; name order alone still canonicalizes.
  const std::size_t n = problem.numVertices();
  std::vector<Time> depth(n, Time::zero());
  {
    const ConstraintGraph graph = problem.buildGraph();
    LongestPathEngine engine(graph);
    const LongestPathResult& lp = engine.compute(kAnchorTask);
    if (lp.feasible) depth = lp.dist;
  }

  std::vector<TaskId> tasks = problem.taskIds();
  std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
    if (depth[a.index()] != depth[b.index()]) {
      return depth[a.index()] < depth[b.index()];
    }
    return problem.task(a).name < problem.task(b).name;
  });

  std::vector<ResourceId> resources = problem.resourceIds();
  std::sort(resources.begin(), resources.end(),
            [&](ResourceId a, ResourceId b) {
              return problem.resource(a).name < problem.resource(b).name;
            });

  // Constraints by (kind, from-name, to-name, separation); the anchor
  // renders as the reserved spelling "@" (task names are identifiers or
  // quoted strings, never "@", so it cannot collide).
  const auto endpointName = [&](TaskId v) -> std::string_view {
    return v == kAnchorTask ? std::string_view("@")
                            : std::string_view(problem.task(v).name);
  };
  std::vector<const TimingConstraint*> constraints;
  constraints.reserve(problem.constraints().size());
  for (const TimingConstraint& c : problem.constraints()) {
    constraints.push_back(&c);
  }
  std::sort(constraints.begin(), constraints.end(),
            [&](const TimingConstraint* a, const TimingConstraint* b) {
              if (a->kind != b->kind) {
                return static_cast<int>(a->kind) < static_cast<int>(b->kind);
              }
              if (endpointName(a->from) != endpointName(b->from)) {
                return endpointName(a->from) < endpointName(b->from);
              }
              if (endpointName(a->to) != endpointName(b->to)) {
                return endpointName(a->to) < endpointName(b->to);
              }
              return a->separation < b->separation;
            });

  // Render twice from the same ordering: the full text, and the
  // structural skeleton (no limits, no per-task delay/power).
  std::string full;
  std::string structural;
  full.reserve(64 + 64 * (n + resources.size() + constraints.size()));
  if (wantStructural) structural.reserve(full.capacity());
  full += "paws-canonical 1\n";
  full += "problem ";
  full += problem.name();
  full += "\n";
  if (wantStructural) {
    structural += "paws-structural 1\n";
    structural += "problem ";
    structural += problem.name();
    structural += "\n";
  }
  full += "limits pmax=";
  appendMw(full, problem.maxPower());
  full += " pmin=";
  appendNum(full, problem.minPower().milliwatts());
  full += " background=";
  appendNum(full, problem.backgroundPower().milliwatts());
  full += "\n";
  // Battery/mode lines render only when declared, so every pre-existing
  // problem keeps its canonical text (and cache hash) bit-for-bit.
  if (problem.battery().has_value()) {
    const BatteryTraits& traits = *problem.battery();
    full += "battery";
    for (const RateBand& band : traits.bands) {
      full += " rate=";
      appendNum(full, band.threshold.milliwatts());
      full += ":";
      appendNum(full, band.factorPermille);
    }
    full += " recoverable=";
    appendNum(full, traits.recoverablePermille);
    full += " recovery=";
    appendNum(full, traits.recoveryRate.milliwatts());
    full += "\n";
  }
  for (const SystemMode& mode : problem.modes()) {
    full += "mode ";
    full += mode.name;
    full += " ceiling=";
    appendNum(full, static_cast<int>(mode.ceiling));
    full += " pmax=";
    appendNum(full, mode.pmaxPct);
    full += " pmin=";
    appendNum(full, mode.pminPct);
    full += "\n";
  }
  for (ResourceId r : resources) {
    full += "resource ";
    full += problem.resource(r).name;
    full += "\n";
    if (wantStructural) {
      structural += "resource ";
      structural += problem.resource(r).name;
      structural += "\n";
    }
  }
  for (TaskId v : tasks) {
    const Task& t = problem.task(v);
    const std::string& resourceName = problem.resource(t.resource).name;
    full += "task ";
    full += t.name;
    full += " resource=";
    full += resourceName;
    full += " delay=";
    appendNum(full, t.delay.ticks());
    full += " power=";
    appendNum(full, t.power.milliwatts());
    full += " crit=";
    appendNum(full, static_cast<int>(t.criticality));
    full += "\n";
    if (wantStructural) {
      structural += "task ";
      structural += t.name;
      structural += " resource=";
      structural += resourceName;
      structural += " crit=";
      appendNum(structural, static_cast<int>(t.criticality));
      structural += "\n";
    }
  }
  for (const TimingConstraint* c : constraints) {
    const char* kw =
        c->kind == TimingConstraint::Kind::kMinSeparation ? "min" : "max";
    const std::size_t targets = wantStructural ? 2 : 1;
    std::string* const outs[] = {&full, &structural};
    for (std::size_t i = 0; i < targets; ++i) {
      std::string* out = outs[i];
      *out += kw;
      *out += " ";
      *out += endpointName(c->from);
      *out += " -> ";
      *out += endpointName(c->to);
      *out += " ";
      appendNum(*out, c->separation.ticks());
      *out += "\n";
    }
  }

  CanonicalForm form;
  form.text = std::move(full);
  form.hash = fnv1a64(form.text);
  if (wantStructural) form.structuralHash = fnv1a64(structural);
  return form;
}

std::uint64_t optionsFingerprint(std::string_view scheduler,
                                 std::uint32_t trials) {
  std::uint64_t h = fnv1a64Append(kFnv1a64OffsetBasis, "scheduler=");
  h = fnv1a64Append(h, scheduler);
  if (scheduler == "pipeline") {
    h = fnv1a64Append(h, ";trials=");
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u", trials);
    h = fnv1a64Append(h, buf);
  }
  return h;
}

}  // namespace paws::cache
