// Problem canonicalization — the schedule cache's notion of identity.
//
// Two `.paws` files that differ only in declaration order, whitespace or
// comments describe the same scheduling problem and must map to the same
// cache key. Whitespace and comments never survive parsing, so the work
// left here is ordering: the canonical form renders the parsed `Problem`
// (dense-id SoA) with
//   * resources sorted by name;
//   * tasks in topological-lexicographic order — ascending longest-path
//     distance from the anchor (a property of the constraint system, not
//     of declaration order), ties broken by name; when the constraint
//     system is infeasible (positive cycle) the depth is undefined and
//     the order degrades to name-only, which is still deterministic;
//   * constraints sorted by (kind, from-name, to-name, separation).
// Every semantic field — problem name, limits, per-task delay/power/
// resource/criticality, constraint bounds — is rendered in exact integer
// (milliwatt / tick) form, so any semantic edit changes the text and
// therefore the FNV-1a-64 hash. The problem name participates because
// cached schedules rebind through `io::parseSchedule`, which checks it.
//
// The *structural* hash is the same rendering with the power limits
// (pmax/pmin/background) and each task's delay/power removed: problems
// equal under it have the same task/resource/constraint skeleton and
// differ only by a "small delta" (changed limits, one task's cost edit) —
// the near-miss revalidation candidates (see cached_solve.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "model/problem.hpp"

namespace paws::cache {

struct CanonicalForm {
  /// Declaration-order-invariant rendering (see file header).
  std::string text;
  /// fnv1a64(text) — the cache key's problem half.
  std::uint64_t hash = 0;
  /// Limits/delay/power-blind variant for near-miss candidate lookup.
  /// 0 when the form was computed with CanonicalParts::kKeyOnly.
  std::uint64_t structuralHash = 0;
};

/// How much of the canonical form to compute. The exact-hit path only
/// needs `text`/`hash`; rendering and hashing the structural skeleton too
/// would roughly double the per-probe cost for a value the hit never
/// reads. The miss path (near-miss lookup, insertion) recomputes the full
/// form — that cost disappears next to any actual solve.
enum class CanonicalParts {
  kKeyOnly,  ///< text + hash only; structuralHash left 0
  kFull,     ///< everything
};

[[nodiscard]] CanonicalForm canonicalize(
    const Problem& problem, CanonicalParts parts = CanonicalParts::kFull);

/// The cache key's second half: everything besides the problem that
/// changes the answer. `scheduler` is the pawsc dispatch name (pipeline /
/// serial / list / optimal); `trials` only matters for the pipeline and is
/// normalized to 0 for the others. Deliberately excluded: jobs (results
/// are byte-identical for any worker count) and budgets (budget-tripped
/// results are never inserted).
[[nodiscard]] std::uint64_t optionsFingerprint(std::string_view scheduler,
                                               std::uint32_t trials);

}  // namespace paws::cache
