// ScheduleCache — thread-safe sharded-LRU store of solved schedules.
//
// The reuse-over-resolve half of the pawsd story: repeated traffic (the
// same problem scheduled again — next CLI invocation, next mission
// iteration, next batch file) is served from here in microseconds instead
// of re-running search. Keys are `(canonical problem hash, options
// fingerprint)` from cache/canonical.hpp; values carry the schedule as
// `.paws` schedule text — rebindable by task *name* against any Problem
// instance with the same canonical form, whatever its declaration order —
// plus the solve's cost/finish/provenOptimal verdict and a small effort
// snapshot so cache hits reprint the same numbers the original solve did.
//
// Concurrency: the map is split into shards, each guarded by its own
// mutex around an intrusive LRU list — `pawsc` batch workers on the
// paws::exec pool hit different shards mostly contention-free. Stats are
// relaxed atomics. A secondary structural index (structural hash →
// primary key) powers the near-miss path; it is best-effort and may point
// at evicted entries, in which case the probe simply misses.
//
// Persistence (`--cache-dir`): save()/load() round-trip every live entry
// through a single JSON file so successive CLI invocations hit too. The
// format is versioned ("schema": 1); unreadable files or entries are
// skipped, never fatal — a corrupt cache costs time, not correctness
// (served entries are re-validated against the querying problem anyway,
// see cached_solve.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/hash.hpp"
#include "base/time.hpp"
#include "obs/metrics.hpp"
#include "sched/result.hpp"

namespace paws::cache {

struct CacheKey {
  std::uint64_t problemHash = 0;  ///< CanonicalForm::hash
  std::uint64_t optionsFp = 0;    ///< optionsFingerprint(...)
  [[nodiscard]] bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept {
    return static_cast<std::size_t>(k.problemHash ^
                                    (k.optionsFp * kFnv1a64Prime));
  }
};

struct CacheEntry {
  /// io::scheduleToText() output; rebinds by task name via parseSchedule.
  std::string scheduleText;
  /// Pre-split (task name, start ticks) pairs — the same assignment as
  /// `scheduleText`, kept so an in-process exact hit can rebind by name
  /// lookup instead of re-parsing the text. In-memory only: save() does
  /// not persist it (the text is the durable form), so entries loaded
  /// from disk carry an empty vector and fall back to parseSchedule.
  std::vector<std::pair<std::string, std::int64_t>> startsByName;
  /// Schedule::energyCost(pmin) of the cached solve, in milliwatt-ticks.
  std::int64_t costMwt = 0;
  Time finish = Time::zero();
  /// True only for exhaustive solves that completed within their budgets.
  bool provenOptimal = false;
  /// CanonicalForm::structuralHash of the producing problem.
  std::uint64_t structuralHash = 0;
  // Effort snapshot of the producing solve, so a hit reports the numbers
  // the original solve did (batch rows print lp-runs, `pawsc schedule`
  // prints the whole effort block, benches read nodesExplored).
  SchedulerStats stats;
  std::uint64_t nodesExplored = 0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Near-miss structural hits served through revalidation/repair.
  std::uint64_t revalidations = 0;
  /// Cold solves that ran with a cache/heuristic-seeded incumbent.
  std::uint64_t warmStarts = 0;
  /// Persisted files refused whole (unparseable, wrong/newer schema,
  /// stream error) — each is a structured skip, never an abort.
  std::uint64_t loadRejectedFiles = 0;
  /// Individual persisted entries dropped during a load (missing fields,
  /// bad hex keys, wrong types, over the entry cap).
  std::uint64_t loadSkippedEntries = 0;
};

class ScheduleCache {
 public:
  /// `capacity` entries total across `shards` shards (both clamped to at
  /// least 1; capacity is rounded up to a multiple of the shard count).
  explicit ScheduleCache(std::size_t capacity = 4096,
                         std::size_t shards = 8);

  /// Exact-key probe; counts a hit or a miss and refreshes LRU recency.
  [[nodiscard]] std::optional<CacheEntry> lookup(const CacheKey& key);

  /// Exact-key probe that is NOT request traffic: no hit/miss counted, no
  /// recency refresh. Used by the warm-start seed probe, which is an
  /// optimization inside one request, not a second request.
  [[nodiscard]] std::optional<CacheEntry> peek(const CacheKey& key) const;

  /// Inserts or overwrites; evicts the least-recently-used entry of the
  /// target shard when it is full.
  void insert(const CacheKey& key, CacheEntry entry);

  /// Near-miss probe: an entry whose *structural* hash matches, under the
  /// same options fingerprint, whatever its full canonical hash. Does not
  /// count toward hits/misses (the caller records a revalidation when the
  /// candidate actually serves) and does not refresh recency.
  [[nodiscard]] std::optional<CacheEntry> lookupStructural(
      std::uint64_t structuralHash, std::uint64_t optionsFp);

  // Outcome counters owned by the resolver's logic, kept here so one
  // object aggregates the whole story across batch workers.
  void noteRevalidation() {
    revalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  void noteWarmStart() { warmStarts_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;

  /// Folds the stats into `registry` as cache.* counters (cache.hits,
  /// cache.misses, cache.insertions, cache.evictions, cache.revalidations,
  /// cache.warm_starts, cache.load_rejected_files,
  /// cache.load_skipped_entries) — the --obs-summary / RunReport surface.
  void exportMetrics(obs::MetricsRegistry& registry) const;

  /// Writes every live entry as one JSON document. Returns false (with
  /// `*error` set when non-null) on I/O failure.
  bool save(const std::string& path, std::string* error = nullptr) const;
  /// Merges entries from `path` into the cache (oldest first, so recency
  /// survives a round trip). Missing file => false with empty error: a
  /// cold cache directory is the normal first-run state. A truncated,
  /// corrupt, or newer-schema file => false with a descriptive error and
  /// a loadRejectedFiles count — a structured skip the caller may log and
  /// continue past; load() itself never throws or aborts. Malformed
  /// individual entries inside a parseable file are dropped and counted
  /// in loadSkippedEntries while the healthy remainder still loads.
  bool load(const std::string& path, std::string* error = nullptr);

  /// File name used inside a --cache-dir directory.
  [[nodiscard]] static const char* kFileName() { return "paws_cache.json"; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Most-recent entry at the front.
    std::list<std::pair<CacheKey, CacheEntry>> lru;
    std::unordered_map<CacheKey,
                       std::list<std::pair<CacheKey, CacheEntry>>::iterator,
                       CacheKeyHash>
        map;
  };

  [[nodiscard]] Shard& shardFor(const CacheKey& key) const {
    return shards_[CacheKeyHash{}(key) % numShards_];
  }

  std::size_t numShards_;
  std::size_t capacityPerShard_;
  std::unique_ptr<Shard[]> shards_;

  mutable std::mutex structMu_;
  /// (structuralHash, optionsFp) -> most recent primary key.
  std::unordered_map<CacheKey, CacheKey, CacheKeyHash> structIndex_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> revalidations_{0};
  std::atomic<std::uint64_t> warmStarts_{0};
  std::atomic<std::uint64_t> loadRejectedFiles_{0};
  std::atomic<std::uint64_t> loadSkippedEntries_{0};
};

}  // namespace paws::cache
