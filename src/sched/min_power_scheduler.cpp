#include "sched/min_power_scheduler.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "graph/longest_path.hpp"
#include "obs/incumbents.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "power/profile_engine.hpp"
#include "sched/slack.hpp"

namespace paws {

namespace {

std::uint32_t nextRand(std::uint32_t& state) {
  std::uint32_t x = state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return state = x;
}

ScanOrder rotateScan(ScanOrder order) {
  switch (order) {
    case ScanOrder::kForward:
      return ScanOrder::kBackward;
    case ScanOrder::kBackward:
      return ScanOrder::kRandom;
    case ScanOrder::kRandom:
      return ScanOrder::kForward;
  }
  return ScanOrder::kForward;
}

SlotHeuristic rotateSlot(SlotHeuristic h) {
  switch (h) {
    case SlotHeuristic::kStartAtGap:
      return SlotHeuristic::kFinishAtGapEnd;
    case SlotHeuristic::kFinishAtGapEnd:
      return SlotHeuristic::kRandom;
    case SlotHeuristic::kRandom:
      return SlotHeuristic::kStartAtGap;
  }
  return SlotHeuristic::kStartAtGap;
}

}  // namespace

MinPowerScheduler::MinPowerScheduler(const Problem& problem,
                                     MinPowerOptions options)
    : problem_(problem), options_(options) {}

ScheduleResult MinPowerScheduler::schedule() {
  // Pin the deadline before the first stage runs; every nested stage then
  // inherits the same absolute time point.
  options_.budget = options_.budget.resolved();
  // Warm start: a caller-provided valid schedule skips the timing and
  // max-power stages and goes straight to gap-filling improvement (see
  // MinPowerOptions::initialStarts). The vector is pinned into the graph
  // as anchor->v delay edges: for a timing-feasible start vector the
  // longest-path ASAP solution then equals the vector exactly, which is
  // the invariant improve() builds its slack evaluation on. Any validation
  // failure falls through to the cold pipeline.
  if (options_.initialStarts.has_value()) {
    const std::vector<Time>& starts = *options_.initialStarts;
    if (starts.size() == problem_.numVertices() && !starts.empty() &&
        starts[0] == Time::zero()) {
      ConstraintGraph graph = problem_.buildGraph();
      for (TaskId v : problem_.taskIds()) {
        graph.addEdge(kAnchorTask, v, starts[v.index()] - Time::zero(),
                      EdgeKind::kDelay);
      }
      LongestPathEngine probe(graph);
      const LongestPathResult& lp = probe.compute(kAnchorTask);
      bool pinned = lp.feasible;
      for (std::size_t i = 0; pinned && i < starts.size(); ++i) {
        pinned = lp.dist[i] == starts[i];
      }
      if (pinned && !profileOf(problem_, starts)
                         .firstSpike(problem_.maxPower())
                         .has_value()) {
        SchedulerStats stats;
        stats.longestPathRuns = 1;  // the pinning probe above
        return improve(graph, Schedule(&problem_, starts), stats);
      }
    }
  }
  MaxPowerOptions maxOptions = options_.maxPower;
  maxOptions.obs.inheritFrom(options_.obs);
  maxOptions.budget.inheritFrom(options_.budget);
  MaxPowerScheduler maxPower(problem_, maxOptions);
  MaxPowerScheduler::Detailed det = maxPower.scheduleDetailed();
  if (!det.result.ok()) return std::move(det.result);
  PAWS_CHECK(det.graph.has_value());
  return improve(*det.graph, *det.result.schedule, det.result.stats);
}

ScheduleResult MinPowerScheduler::improve(ConstraintGraph& graph,
                                          const Schedule& valid,
                                          SchedulerStats stats) {
  obs::PhaseTimer phaseTimer(options_.obs, "min-power");
  ScheduleResult out;
  out.stats = stats;

  const Watts pmax = problem_.maxPower();
  const Watts pmin = problem_.minPower();
  std::vector<Time> starts = valid.starts();
  std::uint32_t rng = options_.randomSeed == 0 ? 1 : options_.randomSeed;

  const Time spikeHorizon(options_.maxPower.ignoreSpikesBeforeTick);
  const bool incremental = options_.incrementalProfile;

  // The live profile. Candidate gap-filling moves are evaluated by
  // checkpointing the engine, applying moveTask deltas for only the tasks
  // the longest-path run moved, reading spike/utilization from cached
  // aggregates, and restoring on reject — the full profileOf rebuild per
  // candidate survives only behind incrementalProfile == false.
  power::ProfileEngine pe(problem_.backgroundPower(), pmin, pmax);
  PowerProfile profile;  // legacy-mode mirror of the live profile
  double rho;
  if (incremental) {
    pe.rebuild(problem_, starts);
    PAWS_CHECK_MSG(!pe.firstSpike(spikeHorizon),
                   "improve() requires a power-valid input schedule");
    rho = pe.utilization();
  } else {
    profile = profileOf(problem_, starts);
    PAWS_CHECK_MSG(!profile.firstSpike(pmax, spikeHorizon),
                   "improve() requires a power-valid input schedule");
    rho = profile.utilization(pmin);
  }
  // Anytime curve: the schedule handed to improve() is the first
  // incumbent; every accepted move below lowers Ec and appends a point.
  const auto recordIncumbent = [&] {
    if (options_.obs.incumbents == nullptr) return;
    const Energy ec = incremental ? pe.energyAbove() : profile.energyAbove(pmin);
    options_.obs.incumbents->record(ec.milliwattTicks());
  };
  recordIncumbent();

  LongestPathEngine engine(graph);
  engine.setObs(options_.obs);
  // Seed the engine once so every candidate-move evaluation below runs
  // incrementally (one delay edge added, checkpoint-restored on reject).
  PAWS_CHECK(engine.compute(kAnchorTask).feasible);
  ++out.stats.longestPathRuns;

  ScanOrder scan = options_.scanOrder;
  SlotHeuristic slot = options_.slotHeuristic;

  // Anytime guard: between candidate evaluations `starts` is always a
  // valid (timing- and Pmax-respecting) schedule — every rejected move is
  // rolled back before the next one is tried — so a trip mid-improvement
  // simply stops polishing and returns the current schedule.
  guard::RunGuard guard(options_.budget.resolved(), /*stride=*/8);
  bool tripped = false;

  for (std::uint32_t pass = 0;
       pass < options_.maxPasses && rho < 1.0 && !tripped; ++pass) {
    ++out.stats.scans;
    PAWS_TRACE_INSTANT(options_.obs.trace, obs::TraceEventKind::kScanPass,
                       obs::TraceEvent::kNoTask, /*at=*/0,
                       /*value=*/static_cast<std::int64_t>(rho * 1e6), pass);
    bool improvedInPass = false;
    bool rescan = true;

    while (rescan && rho < 1.0 && !tripped) {
      rescan = false;
      std::vector<Interval> gaps = incremental ? pe.gaps() : profile.gaps(pmin);
      // Slacks depend only on the graph and starts, which change solely on
      // accepted moves — and those set rescan and break back here. One
      // computation covers every gap of this scan.
      const std::vector<Duration> slacks = computeSlacks(graph, starts);
      switch (scan) {
        case ScanOrder::kForward:
          break;  // gaps() is already in increasing time order
        case ScanOrder::kBackward:
          std::reverse(gaps.begin(), gaps.end());
          break;
        case ScanOrder::kRandom:
          for (std::size_t i = gaps.size(); i > 1; --i) {
            std::swap(gaps[i - 1], gaps[nextRand(rng) % i]);
          }
          break;
      }

      for (const Interval& gap : gaps) {
        const Time t = gap.begin();
        const Watts atT = incremental ? pe.valueAt(t) : profile.valueAt(t);
        if (atT >= pmin) continue;  // stale after a move

        // Candidates: tasks that completed before t but can be delayed,
        // within their slack, far enough to be active at t.
        std::vector<TaskId> candidates;
        for (TaskId v : problem_.taskIds()) {
          const Task& task = problem_.task(v);
          const Time end = starts[v.index()] + task.delay;
          if (end > t) continue;  // still running at/after t, cannot "fill"
          const Duration neededSlack =
              (t - starts[v.index()]) - task.delay + Duration(1);
          if (slacks[v.index()] >= neededSlack) candidates.push_back(v);
        }
        // Try the largest power draw first: it fills the gap fastest.
        std::stable_sort(candidates.begin(), candidates.end(),
                         [this](TaskId x, TaskId y) {
                           return problem_.task(x).power >
                                  problem_.task(y).power;
                         });

        for (TaskId v : candidates) {
          if (guard.poll() != guard::StopReason::kNone) {
            tripped = true;
            break;
          }
          const Task& task = problem_.task(v);
          const Time cur = starts[v.index()];
          // Feasible new-start window that keeps v active at t. Unbounded
          // slack (no outgoing constraints) must not enter the arithmetic:
          // cur + Duration::max() would overflow.
          const Time lo =
              std::max(cur + Duration(1), t - task.delay + Duration(1));
          const Time hi = slacks[v.index()] == Duration::max()
                              ? t
                              : std::min(t, cur + slacks[v.index()]);
          if (lo > hi) continue;

          Time target;
          switch (slot) {
            case SlotHeuristic::kStartAtGap:
              target = hi;  // as close to starting at t as slack allows
              break;
            case SlotHeuristic::kFinishAtGapEnd:
              target = gap.end() - task.delay;
              target = std::clamp(target, lo, hi);
              break;
            case SlotHeuristic::kRandom:
              target = lo + Duration(static_cast<std::int64_t>(
                                nextRand(rng) %
                                static_cast<std::uint64_t>(
                                    (hi - lo).ticks() + 1)));
              break;
          }

          const ConstraintGraph::Checkpoint cp = graph.checkpoint();
          const LongestPathEngine::Checkpoint ecp = engine.checkpoint();
          graph.addEdge(kAnchorTask, v, target - Time::zero(),
                        EdgeKind::kDelay);
          const LongestPathResult& lp = engine.compute(kAnchorTask);
          ++out.stats.longestPathRuns;
          if (!lp.feasible) {
            graph.rollbackTo(cp);
            engine.restore(ecp);
            continue;
          }
          // Evaluate the move: apply it to the live profile as deltas for
          // only the tasks the propagation actually shifted (usually v and
          // a handful of successors), read the verdict from the cached
          // aggregates, and keep or undo the frame with the graph trail.
          power::ProfileEngine::Checkpoint pcp;
          PowerProfile newProfile;
          bool powerValid;
          double newRho;
          if (incremental) {
            pcp = pe.checkpoint();
            for (std::size_t i = 1; i < lp.dist.size(); ++i) {
              if (lp.dist[i] != starts[i]) {
                pe.moveTask(TaskId(static_cast<std::uint32_t>(i)),
                            lp.dist[i]);
              }
            }
            powerValid = !pe.firstSpike(spikeHorizon).has_value();
            newRho = pe.utilization();
          } else {
            newProfile = profileOf(problem_, lp.dist);
            powerValid = !newProfile.firstSpike(pmax, spikeHorizon).has_value();
            newRho = newProfile.utilization(pmin);
          }
          if (powerValid && newRho > rho) {
            engine.release(ecp);  // the delay edge is being kept
            if (incremental) {
              pe.release(pcp);
            } else {
              profile = std::move(newProfile);
            }
            starts = lp.dist;
            rho = newRho;
            recordIncumbent();
            ++out.stats.improvements;
            PAWS_TRACE_INSTANT(options_.obs.trace,
                               obs::TraceEventKind::kMoveAccepted, v.value(),
                               target.ticks(),
                               static_cast<std::int64_t>(newRho * 1e6), pass);
            improvedInPass = true;
            rescan = true;  // gap list is stale; rebuild it
            break;
          }
          PAWS_TRACE_INSTANT(options_.obs.trace,
                             obs::TraceEventKind::kMoveRejected, v.value(),
                             target.ticks(),
                             static_cast<std::int64_t>(newRho * 1e6), pass);
          graph.rollbackTo(cp);
          engine.restore(ecp);
          if (incremental) pe.restore(pcp);
        }
        if (rescan || tripped) break;
      }
    }

    if (!improvedInPass) break;
    if (options_.rotateHeuristics) {
      scan = rotateScan(scan);
      slot = rotateSlot(slot);
    }
  }

  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics->add("profile.rebuilds", pe.rebuilds());
    options_.obs.metrics->add("profile.incremental_updates",
                              pe.incrementalUpdates());
    options_.obs.metrics->add("profile.restores", pe.restores());
    if (tripped) {
      options_.obs.metrics->add(
          guard.reason() == guard::StopReason::kCancelled
              ? "guard.cancels"
              : "guard.deadline_trips",
          1);
      options_.obs.metrics->add("guard.incumbent_returned", 1);
    }
  }

  if (tripped) {
    // The last consistent schedule — valid, just not polished to the end.
    out.status = SchedStatus::kDeadlineExceeded;
    out.message = guard.reason() == guard::StopReason::kCancelled
                      ? "cancelled during min-power improvement; returning "
                        "last consistent schedule"
                      : "deadline exceeded during min-power improvement; "
                        "returning last consistent schedule";
    out.schedule = Schedule(&problem_, starts);
    return out;
  }

  out.status = SchedStatus::kOk;
  out.schedule = Schedule(&problem_, starts);
  return out;
}

}  // namespace paws
