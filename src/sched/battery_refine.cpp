#include "sched/battery_refine.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "sched/windows.hpp"

namespace paws {

Energy effectiveDrawnCharge(const PowerProfile& profile, Watts pmin,
                            const BatteryTraits& model) {
  Energy total;
  for (const PowerSegment& s : profile.segments()) {
    if (s.power <= pmin) continue;
    const Watts draw = s.power - pmin;
    total += model.effectiveRate(draw) *
             (s.interval.end() - s.interval.begin());
  }
  return total;
}

namespace {

/// Same admissibility polishSchedule enforces: pairwise timing
/// constraints, per-resource exclusivity, and the Pmax ceiling.
bool feasible(const Problem& problem, const std::vector<Time>& starts) {
  for (const TimingConstraint& c : problem.constraints()) {
    const Duration gap = starts[c.to.index()] - starts[c.from.index()];
    if (c.kind == TimingConstraint::Kind::kMinSeparation
            ? gap < c.separation
            : gap > c.separation) {
      return false;
    }
  }
  const std::vector<TaskId> tasks = problem.taskIds();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Task& a = problem.task(tasks[i]);
    const Interval ia(starts[tasks[i].index()],
                      starts[tasks[i].index()] + a.delay);
    for (std::size_t j = i + 1; j < tasks.size(); ++j) {
      const Task& b = problem.task(tasks[j]);
      if (a.resource != b.resource) continue;
      const Interval ib(starts[tasks[j].index()],
                        starts[tasks[j].index()] + b.delay);
      if (ia.overlaps(ib)) return false;
    }
  }
  return !profileOf(problem, starts).firstSpike(problem.maxPower());
}

/// Candidate starts for task `v`: its window endpoints plus every profile
/// breakpoint alignment (start at a breakpoint, or finish at one) inside
/// [EST, LST] — the only instants where the piecewise-constant objective
/// can change shape. Sorted and deduplicated, so the scan order (task id,
/// then start time) is deterministic.
std::vector<Time> candidateStarts(const Task& task, const StartWindow& window,
                                  const PowerProfile& profile, Time horizon) {
  std::vector<Time> cands;
  Time latest = window.latest;
  if (latest + task.delay > horizon) latest = horizon - task.delay;
  const Time earliest = window.earliest;
  if (earliest > latest) return cands;
  cands.push_back(earliest);
  cands.push_back(latest);
  for (const PowerSegment& s : profile.segments()) {
    for (const Time edge : {s.interval.begin(), s.interval.end()}) {
      if (edge >= earliest && edge <= latest) cands.push_back(edge);
      const Time aligned = edge - task.delay;
      if (aligned >= earliest && aligned <= latest) cands.push_back(aligned);
    }
  }
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  return cands;
}

}  // namespace

Schedule batteryRefine(const Problem& problem, const Schedule& start,
                       const BatteryRefineOptions& options,
                       BatteryRefineStats* stats) {
  BatteryRefineStats local;
  if (options.model.linear()) {
    // Effective == nominal charge: MinPower already minimized it.
    if (stats != nullptr) *stats = local;
    return start;
  }
  obs::PhaseTimer phase(options.obs, "battery_refine");

  const Watts pmin = problem.minPower();
  const Time horizon = start.finish();
  std::vector<Time> best = start.starts();
  Energy bestCharge =
      effectiveDrawnCharge(profileOf(problem, best), pmin, options.model);
  const Energy inputCharge = bestCharge;

  const std::vector<StartWindow> windows =
      computeStartWindows(problem, problem.buildGraph(), horizon);

  std::vector<Time> scratch;
  bool improved = true;
  for (std::uint32_t pass = 0;
       pass < options.maxPasses && improved && local.moves < options.maxMoves;
       ++pass) {
    improved = false;
    // The profile shifts after every kept move; recompute the breakpoint
    // set per round so candidates chase the current landscape.
    const PowerProfile profile = profileOf(problem, best);
    for (TaskId v : problem.taskIds()) {
      if (local.moves >= options.maxMoves) break;
      const Task& task = problem.task(v);
      for (const Time at :
           candidateStarts(task, windows[v.index()], profile, horizon)) {
        if (at == best[v.index()]) continue;
        scratch = best;
        scratch[v.index()] = at;
        if (finishOf(problem, scratch) > horizon) continue;
        if (!feasible(problem, scratch)) continue;
        const Energy charge = effectiveDrawnCharge(
            profileOf(problem, scratch), pmin, options.model);
        if (charge >= bestCharge) continue;
        best = scratch;
        bestCharge = charge;
        ++local.moves;
        improved = true;
        break;  // first improvement; rescan this task against the new shape
      }
    }
  }

  local.saved = inputCharge - bestCharge;
  if (options.obs.metrics != nullptr) {
    options.obs.metrics->add("battery.refine_moves", local.moves);
    options.obs.metrics->add(
        "battery.refine_saved_mwt",
        static_cast<std::uint64_t>(local.saved.milliwattTicks()));
  }
  if (stats != nullptr) *stats = local;
  return Schedule(&problem, std::move(best));
}

}  // namespace paws
