#include "sched/windows.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "graph/longest_path.hpp"

namespace paws {

std::vector<StartWindow> computeStartWindows(const Problem& problem,
                                             const ConstraintGraph& graph,
                                             Time horizon) {
  const std::size_t n = graph.numVertices();
  PAWS_CHECK(n == problem.numVertices());

  // Forward pass: EST = longest path from the anchor.
  LongestPathEngine engine(graph);
  const LongestPathResult& forward = engine.computeFull(kAnchorTask);
  PAWS_CHECK_MSG(forward.feasible,
                 "window analysis requires a feasible constraint graph");

  std::vector<StartWindow> windows(n);
  for (std::size_t i = 0; i < n; ++i) {
    windows[i].earliest = forward.dist[i] == Time::minusInfinity()
                              ? Time::zero()
                              : forward.dist[i];
  }

  // Backward pass: LST as the greatest fixpoint of
  //   LST(v) = min(horizon - d(v), min over (v -> u, w) LST(u) - w).
  // Iterate to fixpoint (work-list over reversed adjacency); convergence is
  // guaranteed because the graph has no positive cycle: any strictly
  // decreasing chain is bounded by the longest (negated) path.
  std::vector<Time> lst(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId v(static_cast<std::uint32_t>(i));
    if (v == kAnchorTask) {
      // The anchor is pinned at 0; its bound must propagate through
      // deadline back-edges (v -> anchor, -s  =>  sigma(v) <= s).
      lst[i] = Time::zero();
      continue;
    }
    lst[i] = horizon - problem.task(v).delay;
  }

  std::vector<bool> inQueue(n, true);
  std::vector<TaskId> queue;
  queue.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queue.push_back(TaskId(static_cast<std::uint32_t>(i)));
  }
  std::size_t head = 0;
  std::uint64_t guard = static_cast<std::uint64_t>(n) * graph.numEdges() + n;
  while (head < queue.size()) {
    PAWS_CHECK_MSG(guard-- > 0, "window fixpoint failed to converge");
    const TaskId v = queue[head++];
    inQueue[v.index()] = false;
    if (head > 4096 && head * 2 > queue.size()) {
      queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
    // Tighten predecessors through their out-edges into v's current LST.
    // In-adjacency entries carry the predecessor (`other` = from) inline.
    const Time lv = lst[v.index()];
    for (const AdjEntry& ae : graph.inEdges(v)) {
      const Time bound = lv - ae.weight;
      const std::size_t from = ae.other.index();
      if (bound < lst[from]) {
        lst[from] = bound;
        if (!inQueue[from]) {
          inQueue[from] = true;
          queue.push_back(ae.other);
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    windows[i].latest = lst[i];
  }
  return windows;
}

}  // namespace paws
