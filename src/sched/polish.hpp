// Lex-improving schedule polish — a deterministic local search over task
// moves, used to strengthen warm-start seeds for the exhaustive search
// (cache/cached_solve.cpp).
//
// The heuristic pipeline compacts schedules, but the (energy cost, finish)
// lexicographic optimum often spreads tasks out instead: overlapping two
// tasks whose combined power stays below Pmin is free, while stacking
// above Pmin costs energy. Single-task moves frequently plateau on such
// landscapes — on the paper example the optimum differs from the pipeline
// schedule by exactly one *pair* of coordinated moves, each of which is
// cost-neutral on its own. The polish therefore climbs in two tiers:
// first-improvement single moves, then first-improvement pair moves, in a
// fixed deterministic scan order (task id, then start time). Every kept
// move strictly improves (cost, finish) lexicographically, so the loop
// terminates; a move cap bounds the worst case.
//
// The polished schedule is a schedule of the same problem, valid whenever
// the input was valid, with every start in [0, horizon - delay]. Its
// (cost, finish) is an upper bound on the in-horizon optimum — exactly
// what ExhaustiveOptions::{initialIncumbent, initialIncumbentFinish}
// require.
#pragma once

#include <cstdint>

#include "model/problem.hpp"
#include "sched/schedule.hpp"

namespace paws {

struct PolishOptions {
  /// Latest allowed finish: candidate starts range over
  /// [0, horizon - delay] per task, so the result stays inside the
  /// exhaustive search space it will seed.
  Time horizon;
  /// Cap on kept (strictly improving) moves — termination insurance; the
  /// lex-strict acceptance already guarantees progress.
  std::uint32_t maxMoves = 64;
  /// Pair scans cost O(candidates^2) validations. When the single-move
  /// candidate count exceeds this, pairs are skipped and only the
  /// single-move tier runs (large instances are exactly the ones where
  /// the exhaustive search is intractable anyway, so seeding them is
  /// moot).
  std::uint32_t maxPairCandidates = 1024;
};

struct PolishStats {
  std::uint32_t singleMoves = 0;
  std::uint32_t pairMoves = 0;
};

/// Improves `start` in place lexicographically on (energy cost above
/// Pmin, finish). Returns a schedule that is never lex-worse than the
/// input. The input must be valid (timing + resources + Pmax) and finish
/// within `options.horizon`; starts outside the horizon make the task's
/// current slot its only candidate.
Schedule polishSchedule(const Problem& problem, const Schedule& start,
                        const PolishOptions& options,
                        PolishStats* stats = nullptr);

}  // namespace paws
