#include "sched/polish.hpp"

#include <optional>
#include <utility>
#include <vector>

namespace paws {

namespace {

/// Feasibility of a full start vector: pairwise timing constraints,
/// per-resource exclusivity, and the Pmax ceiling — the same admissibility
/// the exhaustive search and the validator enforce. O(n^2 + profile).
bool feasible(const Problem& problem, const std::vector<Time>& starts) {
  for (const TimingConstraint& c : problem.constraints()) {
    const Duration gap = starts[c.to.index()] - starts[c.from.index()];
    if (c.kind == TimingConstraint::Kind::kMinSeparation ? gap < c.separation
                                                         : gap > c.separation) {
      return false;
    }
  }
  const std::vector<TaskId> tasks = problem.taskIds();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Task& a = problem.task(tasks[i]);
    const Interval ia(starts[tasks[i].index()],
                      starts[tasks[i].index()] + a.delay);
    for (std::size_t j = i + 1; j < tasks.size(); ++j) {
      const Task& b = problem.task(tasks[j]);
      if (a.resource != b.resource) continue;
      const Interval ib(starts[tasks[j].index()],
                        starts[tasks[j].index()] + b.delay);
      if (ia.overlaps(ib)) return false;
    }
  }
  return !profileOf(problem, starts).firstSpike(problem.maxPower());
}

struct LexValue {
  Energy cost;
  Time finish;
};

LexValue valueOf(const Problem& problem, const std::vector<Time>& starts) {
  return {profileOf(problem, starts).energyAbove(problem.minPower()),
          finishOf(problem, starts)};
}

bool lexBetter(const LexValue& a, const LexValue& b) {
  return a.cost < b.cost || (a.cost == b.cost && a.finish < b.finish);
}

/// One candidate slot assignment: task `v` moved to start `at`.
struct Slot {
  TaskId task;
  Time at;
};

/// Every (task, start) pair within the horizon, in deterministic scan
/// order. A task whose delay no longer fits keeps only its current slot.
std::vector<Slot> candidateSlots(const Problem& problem,
                                 const std::vector<Time>& starts,
                                 Time horizon) {
  std::vector<Slot> slots;
  for (TaskId v : problem.taskIds()) {
    const Duration delay = problem.task(v).delay;
    if (Time::zero() + delay > horizon) {
      slots.push_back({v, starts[v.index()]});
      continue;
    }
    for (Time at = Time::zero(); at + delay <= horizon; at += Duration(1)) {
      slots.push_back({v, at});
    }
  }
  return slots;
}

}  // namespace

Schedule polishSchedule(const Problem& problem, const Schedule& start,
                        const PolishOptions& options, PolishStats* stats) {
  std::vector<Time> best = start.starts();
  LexValue bestValue = valueOf(problem, best);
  PolishStats local;
  std::vector<Time> scratch;

  // Returns true when a strictly lex-improving assignment was applied.
  const auto tryApply = [&](const std::vector<Time>& cand) {
    if (!feasible(problem, cand)) return false;
    const LexValue v = valueOf(problem, cand);
    if (!lexBetter(v, bestValue)) return false;
    best = cand;
    bestValue = v;
    return true;
  };

  bool improved = true;
  while (improved && local.singleMoves + local.pairMoves < options.maxMoves) {
    improved = false;
    const std::vector<Slot> slots = candidateSlots(problem, best, options.horizon);

    // Tier 1: first-improvement single moves.
    for (const Slot& s : slots) {
      if (s.at == best[s.task.index()]) continue;
      scratch = best;
      scratch[s.task.index()] = s.at;
      if (tryApply(scratch)) {
        ++local.singleMoves;
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // Tier 2: first-improvement pair moves — the coordinated step single
    // moves cannot take (each half is typically cost-neutral alone).
    if (slots.size() > options.maxPairCandidates) break;
    for (std::size_t i = 0; i < slots.size() && !improved; ++i) {
      const Slot& a = slots[i];
      if (a.at == best[a.task.index()]) continue;
      for (std::size_t j = i + 1; j < slots.size(); ++j) {
        const Slot& b = slots[j];
        if (b.task == a.task) continue;
        if (b.at == best[b.task.index()]) continue;
        scratch = best;
        scratch[a.task.index()] = a.at;
        scratch[b.task.index()] = b.at;
        if (tryApply(scratch)) {
          ++local.pairMoves;
          improved = true;
          break;
        }
      }
    }
  }

  if (stats != nullptr) *stats = local;
  return Schedule(&problem, std::move(best));
}

}  // namespace paws
