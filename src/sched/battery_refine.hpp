// Rate-capacity battery refinement — Khan & Vemuri's post-pass.
//
// Under a linear battery, charge leaves the pack exactly as fast as the
// schedule draws it, so MinPower's Ec(Pmin) objective is already the
// delivered-lifetime objective. Under the rate-capacity effect the two
// diverge: drawing 2x watts for t costs MORE charge than drawing x watts
// for 2t, because the effective drain grows superlinearly above the rated
// current. A schedule that stacks tasks into tall bursts can therefore be
// Ec-optimal yet die early in flight.
//
// batteryRefine() closes that gap with a deterministic local search on top
// of the pipeline's best schedule: tasks are moved between power-profile
// breakpoints inside their feasible [EST, LST] windows, and a move is kept
// only when it strictly reduces the *effective* drawn charge — the exact
// fixed-point integral the mission simulator's Battery will drain. The
// refined schedule is never worse on that objective, stays timing-,
// resource- and Pmax-valid, and never finishes later than the input.
// Everything is exact int64 milliwatt-tick arithmetic; byte-determinism is
// preserved. With a linear model the pass is an immediate no-op.
#pragma once

#include <cstdint>

#include "base/units.hpp"
#include "model/battery_traits.hpp"
#include "model/problem.hpp"
#include "obs/context.hpp"
#include "power/profile.hpp"
#include "sched/schedule.hpp"

namespace paws {

struct BatteryRefineOptions {
  /// Rate-capacity model to optimize against. A linear model (no bands)
  /// makes the pass return the input schedule untouched.
  BatteryTraits model;
  /// Improvement rounds; each round scans every candidate move once.
  std::uint32_t maxPasses = 8;
  /// Cap on kept (strictly improving) moves across all passes.
  std::uint32_t maxMoves = 64;
  obs::ObsContext obs;
};

struct BatteryRefineStats {
  std::uint32_t moves = 0;   ///< strictly improving moves kept
  Energy saved;              ///< effective charge cut vs the input schedule
};

/// Effective battery charge a mission drains replaying `profile` against a
/// free-power floor of `pmin`: for every segment drawing above pmin, the
/// battery share (power - pmin) is inflated through the model's
/// rate-capacity lookup before integrating. Exact milliwatt-ticks; equals
/// profile.energyAbove(pmin) under a linear model.
Energy effectiveDrawnCharge(const PowerProfile& profile, Watts pmin,
                            const BatteryTraits& model);

/// Refines `start` against the rate-capacity objective. The input must be
/// valid (timing + resources + Pmax); the result is valid, finishes no
/// later than the input, and its effectiveDrawnCharge is never larger.
Schedule batteryRefine(const Problem& problem, const Schedule& start,
                       const BatteryRefineOptions& options,
                       BatteryRefineStats* stats = nullptr);

}  // namespace paws
