#include "sched/cyclic_scheduler.hpp"

#include <algorithm>
#include <map>

#include "base/check.hpp"
#include "graph/longest_path.hpp"

namespace paws {

namespace {

/// Pins a two-iteration expansion: iteration 1 at the kernel offsets,
/// iteration 2 at the offsets shifted by `period`, and returns its profile
/// plus validity against the problem's Pmax. The caller owns feasibility
/// of the timing side (offsets came from a valid schedule; the shift only
/// has to respect cross-iteration constraints, which the minimal-period
/// search below established first).
PowerProfile expansionProfile(const Problem& two,
                              const std::vector<std::vector<TaskId>>& iters,
                              const std::vector<Time>& offsets,
                              Duration period) {
  std::vector<Time> starts(two.numVertices(), Time::zero());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    starts[iters[0][i].index()] = offsets[i];
    starts[iters[1][i].index()] = offsets[i] + period;
  }
  return profileOf(two, starts);
}

/// True when the pinned two-iteration expansion satisfies every user
/// timing constraint (resource exclusivity is implied by per-iteration
/// validity plus non-overlap of equal kernels at period >= span... not in
/// general — pipelined kernels overlap — so it IS checked here too).
bool expansionTimeValid(const Problem& two,
                        const std::vector<std::vector<TaskId>>& iters,
                        const std::vector<Time>& offsets, Duration period) {
  std::vector<Time> starts(two.numVertices(), Time::zero());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    starts[iters[0][i].index()] = offsets[i];
    starts[iters[1][i].index()] = offsets[i] + period;
  }
  for (const TimingConstraint& c : two.constraints()) {
    const Duration gap =
        starts[c.to.index()] - starts[c.from.index()];
    if (c.kind == TimingConstraint::Kind::kMinSeparation) {
      if (gap < c.separation) return false;
    } else if (gap > c.separation) {
      return false;
    }
  }
  // Resource exclusivity across the two kernels.
  std::map<ResourceId, std::vector<Interval>> byResource;
  for (TaskId v : two.taskIds()) {
    byResource[two.task(v).resource].push_back(
        Interval(starts[v.index()], starts[v.index()] + two.task(v).delay));
  }
  for (auto& [res, ivs] : byResource) {
    std::sort(ivs.begin(), ivs.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin() < b.begin();
              });
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      if (ivs[i - 1].overlaps(ivs[i])) return false;
    }
  }
  return true;
}

}  // namespace

CyclicScheduler::CyclicScheduler(UnrollFactory factory,
                                 PowerAwareOptions options)
    : factory_(std::move(factory)), options_(options) {}

CyclicResult CyclicScheduler::schedule() {
  CyclicResult result;

  // --- 1. Schedule a 4-deep unroll; iteration 2 (interior: pre-heated by
  // its predecessor and pre-heating its successor) is the kernel. ---
  std::vector<std::vector<TaskId>> iterations;
  const Problem problem = factory_(4, &iterations);
  if (iterations.size() != 4) {
    result.message = "unroll factory must report 4 iterations";
    return result;
  }
  const std::size_t kernelSize = iterations[0].size();
  for (const auto& iter : iterations) {
    if (kernelSize == 0 || iter.size() != kernelSize) {
      result.message = "iterations must contain the same non-empty task sets";
      return result;
    }
  }

  PowerAwareScheduler scheduler(problem, options_);
  const ScheduleResult r = scheduler.schedule();
  if (!r.ok()) {
    result.message = "unrolled scheduling failed: " + r.message;
    return result;
  }
  const Schedule& s = *r.schedule;

  Time kernelOrigin = Time::max();
  for (const TaskId v : iterations[1]) {
    kernelOrigin = std::min(kernelOrigin, s.start(v));
  }
  std::vector<Time> offsets(kernelSize);
  Duration kernelSpan = Duration::zero();
  for (std::size_t i = 0; i < kernelSize; ++i) {
    offsets[i] = Time::zero() + (s.start(iterations[1][i]) - kernelOrigin);
    kernelSpan = std::max(
        kernelSpan, (offsets[i] - Time::zero()) +
                        problem.task(iterations[1][i]).delay);
  }

  const Watts pmin = problem.minPower();
  const Watts pmax = problem.maxPower();
  result.warmupSpan = kernelOrigin - Time::zero();
  result.warmupCost = s.powerProfile().energyAboveWithin(
      pmin, Interval(Time::zero(), kernelOrigin));

  // --- 2. Find the minimal period at which repeating the kernel is time-
  // AND power-valid, on a pinned two-iteration expansion. Assumes user
  // constraints span at most adjacent iterations (true for chained-loop
  // models like the rover's). ---
  std::vector<std::vector<TaskId>> two;
  const Problem twoProblem = factory_(2, &two);
  if (two.size() != 2 || two[0].size() != kernelSize ||
      two[1].size() != kernelSize) {
    result.message = "factory is inconsistent between unroll depths";
    return result;
  }

  bool found = false;
  for (Duration period = Duration(1); period <= kernelSpan * 2;
       period += Duration(1)) {
    if (!expansionTimeValid(twoProblem, two, offsets, period)) continue;
    const PowerProfile profile =
        expansionProfile(twoProblem, two, offsets, period);
    if (profile.firstSpike(pmax)) continue;
    result.kernel.period = period;
    // Steady-state cost: the second kernel's period window, where the
    // overlap pattern equals the looping regime.
    result.kernel.costPerPeriod = profile.energyAboveWithin(
        pmin, Interval(Time::zero() + period, Time::zero() + period * 2));
    found = true;
    break;
  }
  if (!found) {
    result.message =
        "no period up to twice the kernel span is valid; the kernel does "
        "not loop";
    return result;
  }

  for (std::size_t i = 0; i < kernelSize; ++i) {
    result.kernel.offsets.emplace_back(
        problem.task(iterations[0][i]).name, offsets[i]);
  }
  std::sort(result.kernel.offsets.begin(), result.kernel.offsets.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });

  result.steadyStateProven = true;
  result.ok = true;
  return result;
}

}  // namespace paws
