// Exhaustive branch-and-bound scheduler — the optimality oracle.
//
// Section 5.3: "To find an 'optimal' schedule whose energy cost is
// minimized, the algorithm should examine all valid partial orderings of
// tasks, which will increase the complexity of computation to an
// exponential order of tasks." The paper therefore uses heuristics; this
// class implements the exponential search for SMALL instances so the test
// suite and the optimality bench can measure how far the heuristics land
// from the true optimum.
//
// Search space: integer start times in [0, horizon] for every task,
// explored by DFS in task order with sound prunings:
//   * pairwise violation of user constraints / resource overlap against
//     already-placed tasks;
//   * partial power profile: placed tasks alone exceeding Pmax can never
//     be repaired by placing more tasks (power only adds up);
//   * partial energy cost already at/above the incumbent (Ec is monotone
//     in the set of placed tasks);
//   * per-task start windows from the constraint graph's longest paths,
//     a remaining-task energy floor and critical-path finish bound
//     (pruneBounds), canonical ordering of interchangeable tasks
//     (pruneSymmetry), and a per-worker dominance transposition table
//     over canonical state signatures (pruneDominance).
// Each pruning only discards subtrees that cannot contain the leaf the
// unpruned search would return, so the result — including tie-breaks — is
// byte-identical to the unpruned search for any flag combination.
// Leaves are verified with the independent ScheduleValidator. The search
// is exhaustive within the horizon, so the returned schedule minimizes
// (energy cost at Pmin, finish time) lexicographically among all valid
// schedules that fit the horizon.
//
// Parallel mode (`jobs` > 1) splits the top-level choice — task 1's start
// time — into contiguous ranges searched by independent workers on a
// paws::exec::Pool. Workers share only the incumbent *cost bound* (a
// relaxed atomic holding achieved leaf costs, so the strictly-greater
// prefix pruning stays sound) and publish their chunk-local winners, which
// are reduced in chunk order. The result is bit-identical to jobs == 1 for
// any thread count — except when the node budget trips, where the set of
// nodes visited first depends on scheduling (see docs/performance.md).
#pragma once

#include <optional>

#include "guard/budget.hpp"
#include "model/problem.hpp"
#include "obs/context.hpp"
#include "sched/result.hpp"

namespace paws {

struct ExhaustiveOptions {
  /// Latest allowed completion. Defaults to the fully-serial span plus the
  /// largest user separation — generous for small instances. Optimality is
  /// relative to this horizon.
  std::optional<Time> horizon;
  /// Node budget; the search reports nonOptimal when it trips. Shared by
  /// all workers in parallel mode.
  std::uint64_t maxNodes = 20'000'000;
  /// Worker threads for the branch-and-bound: 1 runs the serial search on
  /// the calling thread, 0 resolves via PAWS_JOBS / hardware_concurrency
  /// (exec::resolveJobs). Any value yields bit-identical schedules.
  std::size_t jobs = 1;
  /// Maintain each worker's placed-prefix profile as a power::ProfileEngine
  /// (one addTask per placement, one removeTask per backtrack) instead of
  /// rebuilding it at every node. Bit-identical search; the flag keeps the
  /// rebuild path alive for the equivalence tests.
  bool incrementalProfile = true;
  /// Dominance pruning: each worker keeps a transposition table keyed on a
  /// canonical signature of the search state (depth, merged placed-prefix
  /// power profile, and the start times of placed tasks that can still
  /// interact with unplaced ones) and skips re-expanding states it has
  /// already expanded. The first expansion of a state enumerates — or
  /// proves globally irrelevant — every completion, and it is the earliest
  /// in DFS order, so skipping repeats never changes the returned winner.
  bool pruneDominance = true;
  /// Symmetry breaking: interchangeable tasks (identical delay, power and
  /// resource, identical constraint profile, no constraint between them)
  /// are explored only in the canonical non-decreasing start order. The
  /// first-found optimal leaf is the lexicographically smallest member of
  /// its symmetry orbit, which is exactly the canonical one, so the winner
  /// is unchanged.
  bool pruneSymmetry = true;
  /// Tighter lower bounds: start-time windows from the constraint graph's
  /// longest paths (forward = earliest start, reversed = latest start), a
  /// remaining-task energy floor added to the placed prefix's cost before
  /// comparing against the incumbent, and a critical-path finish bound for
  /// the cost-tie case. All three only discard subtrees that cannot
  /// contain the winner.
  bool pruneBounds = true;
  /// Warm-start incumbent: the energy cost (above Pmin, background
  /// included — exactly Schedule::energyCost(pmin)) of a schedule of THIS
  /// problem that is already known valid and finishes within the horizon.
  /// It primes the shared atomic cost bound before the first node, so the
  /// search prunes against a real incumbent from node 0 instead of
  /// discovering one. Every cost pruning compares strictly-greater against
  /// the bound and the seed is >= the optimal cost by construction, so no
  /// subtree containing the winner (or any cost-tying leaf) is cut: the
  /// returned schedule is byte-identical to a cold run, with at most —
  /// in practice strictly — fewer nodes explored. The seed is a bound,
  /// not a result: it is never recorded in the incumbent log and never
  /// returned. Seeding with a cost below the true optimum violates the
  /// precondition and leaves the result unspecified; callers obtain seeds
  /// from validated schedules only (see cache/cached_solve.cpp).
  std::optional<Energy> initialIncumbent;
  /// Finish time of the same known-valid schedule as `initialIncumbent`
  /// (ignored without it). Unlocks the cost-tie finish cut from node 0:
  /// each worker's local incumbent is pre-seeded with the phantom pair
  /// (cost, finish + 1 tick). The lex-first optimum (C*, t*) satisfies
  /// (C*, t*) <= (cost, finish) < (cost, finish + 1), so it strictly
  /// improves the phantom and is accepted, published and returned exactly
  /// as in a cold run; on its path the finish lower bound is <= t* <=
  /// finish < finish + 1, so the tie-break can never cut it. A phantom
  /// that no real leaf beat is discarded, never returned.
  std::optional<Time> initialIncumbentFinish;
  /// Metrics sink; parallel runs publish the exec.* pool counters here.
  obs::ObsContext obs;
  /// Wall-clock deadline / cancellation. When it trips mid-search the
  /// scheduler returns kDeadlineExceeded with the best incumbent found so
  /// far (provenOptimal=false). Inactive by default; the clean path stays
  /// byte-identical for any jobs count.
  guard::RunBudget budget;
};

struct ExhaustiveOutcomeStats {
  std::uint64_t nodesExplored = 0;
  /// Subtrees skipped by the dominance transposition table.
  std::uint64_t prunedDominance = 0;
  /// Candidate start times skipped by symmetry canonicalization.
  std::uint64_t prunedSymmetry = 0;
  /// Candidate start times cut by windows / cost floors / finish bounds.
  std::uint64_t prunedBound = 0;
  bool provenOptimal = false;  // search completed within the node budget
  /// Why the search stopped early (deadline/cancel); kNone for clean runs
  /// and plain node-budget trips.
  guard::StopReason stopReason = guard::StopReason::kNone;
};

class ExhaustiveScheduler {
 public:
  explicit ExhaustiveScheduler(const Problem& problem,
                               ExhaustiveOptions options = {});

  ScheduleResult schedule();
  [[nodiscard]] const ExhaustiveOutcomeStats& outcome() const {
    return outcome_;
  }

 private:
  const Problem& problem_;
  ExhaustiveOptions options_;
  ExhaustiveOutcomeStats outcome_;
};

}  // namespace paws
