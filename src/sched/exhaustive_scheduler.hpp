// Exhaustive branch-and-bound scheduler — the optimality oracle.
//
// Section 5.3: "To find an 'optimal' schedule whose energy cost is
// minimized, the algorithm should examine all valid partial orderings of
// tasks, which will increase the complexity of computation to an
// exponential order of tasks." The paper therefore uses heuristics; this
// class implements the exponential search for SMALL instances so the test
// suite and the optimality bench can measure how far the heuristics land
// from the true optimum.
//
// Search space: integer start times in [0, horizon] for every task,
// explored by DFS in task order with three sound prunings:
//   * pairwise violation of user constraints / resource overlap against
//     already-placed tasks;
//   * partial power profile: placed tasks alone exceeding Pmax can never
//     be repaired by placing more tasks (power only adds up);
//   * partial energy cost already at/above the incumbent (Ec is monotone
//     in the set of placed tasks).
// Leaves are verified with the independent ScheduleValidator. The search
// is exhaustive within the horizon, so the returned schedule minimizes
// (energy cost at Pmin, finish time) lexicographically among all valid
// schedules that fit the horizon.
#pragma once

#include <optional>

#include "model/problem.hpp"
#include "sched/result.hpp"

namespace paws {

struct ExhaustiveOptions {
  /// Latest allowed completion. Defaults to the fully-serial span plus the
  /// largest user separation — generous for small instances. Optimality is
  /// relative to this horizon.
  std::optional<Time> horizon;
  /// Node budget; the search reports nonOptimal when it trips.
  std::uint64_t maxNodes = 20'000'000;
};

struct ExhaustiveOutcomeStats {
  std::uint64_t nodesExplored = 0;
  bool provenOptimal = false;  // search completed within the node budget
};

class ExhaustiveScheduler {
 public:
  explicit ExhaustiveScheduler(const Problem& problem,
                               ExhaustiveOptions options = {});

  ScheduleResult schedule();
  [[nodiscard]] const ExhaustiveOutcomeStats& outcome() const {
    return outcome_;
  }

 private:
  const Problem& problem_;
  ExhaustiveOptions options_;
  ExhaustiveOutcomeStats outcome_;
};

}  // namespace paws
