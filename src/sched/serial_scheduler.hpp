// SerialScheduler — the JPL baseline (Section 6).
//
// The Mars Pathfinder mission ran a fixed, fully serialized, hand-crafted
// schedule: at most one task executes at any instant, regardless of how
// much solar power is available. We reproduce that design point by running
// the timing scheduler with *every* task forced onto one virtual resource,
// so the result is the tightest fully-serial schedule consistent with the
// timing constraints — exactly what the paper compares against ("the
// existing schedule is identical to our power-aware schedule in the worst
// case with the lowest power budget").
//
// The baseline is power-oblivious by design: it never consults Pmax/Pmin.
// It is "low-power" because serial execution keeps the instantaneous draw
// at one task + background.
#pragma once

#include "model/problem.hpp"
#include "sched/options.hpp"
#include "sched/result.hpp"

namespace paws {

class SerialScheduler {
 public:
  explicit SerialScheduler(const Problem& problem, TimingOptions options = {});

  /// Returns the earliest fully-serialized time-valid schedule, or a timing
  /// failure when the constraints admit no serial order.
  ScheduleResult schedule();

 private:
  const Problem& problem_;
  TimingOptions options_;
};

}  // namespace paws
