// Slack analysis (Section 4.1).
//
// Given a time-valid assignment sigma over a constraint graph G, the slack
// Delta_sigma(v) is the largest delay of v's start alone that keeps sigma
// time-valid. Every constraint that upper-bounds sigma(v) relative to
// another task appears in G as an *out*-edge of v (min separations into
// successors, serialization before later same-resource tasks, max
// separations encoded as back edges out of v), so
//
//   Delta_sigma(v) = min over out-edges (v -> u, w) of (sigma(u) - w) - sigma(v)
//
// and Duration::max() when v has no out-edges (delay bounded only by the
// scheduler's own heuristics).
//
// The graph must already contain the serialization/decision edges the
// current schedule was computed with — slacks on the bare user graph would
// ignore resource exclusivity.
#pragma once

#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "graph/constraint_graph.hpp"

namespace paws {

/// Slack of a single vertex under assignment `sigma` (vertex-indexed).
Duration slackOf(const ConstraintGraph& graph, const std::vector<Time>& sigma,
                 TaskId v);

/// Slacks for all vertices (index-aligned with `sigma`).
std::vector<Duration> computeSlacks(const ConstraintGraph& graph,
                                    const std::vector<Time>& sigma);

}  // namespace paws
