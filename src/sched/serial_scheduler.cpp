#include "sched/serial_scheduler.hpp"

#include "base/check.hpp"
#include "graph/longest_path.hpp"
#include "sched/timing_scheduler.hpp"

namespace paws {

namespace {

/// Clone of `p` with all tasks on a single resource. Task ids are assigned
/// in insertion order, so they coincide with the original problem's ids and
/// the resulting start vector applies to the original directly.
Problem monoResourceClone(const Problem& p) {
  Problem mono(p.name() + "_serial");
  const ResourceId only = mono.addResource("serial");
  for (TaskId v : p.taskIds()) {
    const Task& t = p.task(v);
    const TaskId copied = mono.addTask(t.name, t.delay, t.power, only);
    PAWS_CHECK(copied == v);
  }
  for (const TimingConstraint& c : p.constraints()) {
    switch (c.kind) {
      case TimingConstraint::Kind::kMinSeparation:
        mono.minSeparation(c.from, c.to, c.separation);
        break;
      case TimingConstraint::Kind::kMaxSeparation:
        mono.maxSeparation(c.from, c.to, c.separation);
        break;
    }
  }
  mono.setBackgroundPower(p.backgroundPower());
  mono.setMaxPower(p.maxPower());
  mono.setMinPower(p.minPower());
  return mono;
}

}  // namespace

SerialScheduler::SerialScheduler(const Problem& problem, TimingOptions options)
    : problem_(problem), options_(options) {}

ScheduleResult SerialScheduler::schedule() {
  ScheduleResult out;
  const Problem mono = monoResourceClone(problem_);
  ConstraintGraph graph = mono.buildGraph();
  LongestPathEngine engine(graph);
  TimingScheduler timing(mono, options_);
  TimingScheduler::Output t = timing.run(graph, engine, out.stats);
  if (!t.ok) {
    out.status = t.budgetExhausted ? SchedStatus::kBudgetExhausted
                                   : SchedStatus::kTimingInfeasible;
    out.message = t.message;
    return out;
  }
  out.status = SchedStatus::kOk;
  out.schedule = Schedule(&problem_, std::move(t.starts));
  return out;
}

}  // namespace paws
