// Mid-flight schedule repair.
//
// The runtime story (Section 5.3) selects among static schedules at
// iteration boundaries. When the environment changes *inside* an iteration
// — the budget drops, a constraint tightens — the right response is not a
// cold re-run: tasks that already started cannot move. Repair locks
// history and reschedules only the future:
//
//   * tasks that started strictly before `now` are pinned at their
//     current slots (they are running or done);
//   * every remaining task gets `release(now)` — the repaired schedule
//     cannot reach back into the past;
//   * the full pipeline re-runs on the amended problem, under whatever
//     new Pmax/Pmin the caller installed in `updated`.
//
// The result is a complete start assignment for the ORIGINAL task set:
// history is bit-identical, the future is re-planned. If the past itself
// violates the new budget (a spike already in progress), repair still
// succeeds when the future is fixable — the validator will attribute the
// historical spike honestly.
#pragma once

#include "model/problem.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/result.hpp"

namespace paws {

struct RepairInput {
  /// The problem with the NEW limits/constraints in force (typically a
  /// copy of the original with setMaxPower/setMinPower updated). Task set
  /// and ids must match the schedule's problem.
  const Problem* updated = nullptr;
  /// The schedule being executed.
  const Schedule* current = nullptr;
  /// The instant of the change; tasks with start(v) < now are frozen.
  Time now;
};

/// Reschedules the future of `input.current` under `input.updated`.
/// The returned schedule is bound to `input.updated`.
ScheduleResult repairSchedule(const RepairInput& input,
                              const PowerAwareOptions& options = {});

}  // namespace paws
