#include "sched/timing_scheduler.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "model/explain.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"

namespace paws {

namespace {

/// xorshift32 — deterministic, seedable, no <random> state bloat.
std::uint32_t nextRand(std::uint32_t& state) {
  std::uint32_t x = state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return state = x;
}

}  // namespace

TimingScheduler::TimingScheduler(const Problem& problem, TimingOptions options)
    : problem_(problem), options_(options) {
  tasksOnResource_.resize(problem.numResources());
  const std::span<const ResourceId> resources = problem.taskResources();
  for (TaskId v : problem.taskIds()) {
    tasksOnResource_[resources[v.index()].index()].push_back(v);
  }
}

TimingScheduler::Output TimingScheduler::run(ConstraintGraph& graph,
                                             LongestPathEngine& engine,
                                             SchedulerStats& stats) {
  PAWS_CHECK_MSG(graph.numVertices() == problem_.numVertices(),
                 "graph/problem vertex count mismatch");
  obs::PhaseTimer phase(options_.obs, "timing");
  Output out;
  visited_.assign(problem_.numVertices(), false);
  visited_[kAnchorTask.index()] = true;  // Anchor is pre-placed at time 0.
  backtracksLeft_ = options_.maxBacktracks;
  budgetExhausted_ = false;
  stopReason_ = guard::StopReason::kNone;
  // One clock read per 64 candidate placements; each placement runs a
  // longest-path pass, so the poll cost disappears into the search.
  guard_ = guard::RunGuard(options_.budget.resolved(), 64);
  rngState_ = options_.randomSeed == 0 ? 1 : options_.randomSeed;

  const ConstraintGraph::Checkpoint entry = graph.checkpoint();
  const LongestPathResult& first = engine.compute(kAnchorTask);
  ++stats.longestPathRuns;
  if (!first.feasible) {
    out.message = explainCycle(problem_, graph, first);
    if (out.message.empty()) {
      out.message = "user constraints are infeasible (positive cycle)";
    }
    return out;
  }

  if (visit(graph, engine, stats, 1)) {
    const LongestPathResult& final = engine.compute(kAnchorTask);
    ++stats.longestPathRuns;
    PAWS_CHECK(final.feasible);
    out.ok = true;
    out.starts = final.dist;
    // Defensive: every task must be reachable thanks to release edges.
    for (Time t : out.starts) PAWS_CHECK(t != Time::minusInfinity());
    return out;
  }

  graph.rollbackTo(entry);
  out.budgetExhausted = budgetExhausted_;
  out.stopReason = stopReason_;
  if (stopReason_ != guard::StopReason::kNone) {
    out.message = stopReason_ == guard::StopReason::kCancelled
                      ? "search cancelled before finding an order"
                      : "deadline exceeded before finding an order";
  } else {
    out.message = budgetExhausted_
                      ? "backtrack budget exhausted before finding an order"
                      : "no serialization order satisfies the constraints";
  }
  return out;
}

bool TimingScheduler::visit(ConstraintGraph& graph, LongestPathEngine& engine,
                            SchedulerStats& stats, std::size_t numVisited) {
  const std::size_t n = problem_.numVertices();
  if (numVisited == n) return true;

  // Collect candidates (unvisited vertices) in heuristic order, into the
  // per-depth scratch buffer (capacity survives backtracks).
  if (candidateScratch_.size() < numVisited + 1) {
    candidateScratch_.resize(numVisited + 1);
  }
  std::vector<TaskId>& candidates = candidateScratch_[numVisited];
  candidates.clear();
  candidates.reserve(n - numVisited);
  for (std::size_t i = 1; i < n; ++i) {
    if (!visited_[i]) candidates.push_back(TaskId(static_cast<std::uint32_t>(i)));
  }
  switch (options_.candidateOrder) {
    case CandidateOrder::kByLongestPath: {
      const std::vector<Time>& dist = engine.result().dist;
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&dist](TaskId a, TaskId b) {
                         return dist[a.index()] < dist[b.index()];
                       });
      break;
    }
    case CandidateOrder::kByIndex:
      break;  // Already in index order.
    case CandidateOrder::kRandom:
      for (std::size_t i = candidates.size(); i > 1; --i) {
        std::swap(candidates[i - 1], candidates[nextRand(rngState_) % i]);
      }
      break;
  }

  for (TaskId c : candidates) {
    if (guard_.poll() != guard::StopReason::kNone) {
      stopReason_ = guard_.reason();
      return false;  // unwinds through every level's rollback path
    }
    PAWS_TRACE_INSTANT(options_.obs.trace, obs::TraceEventKind::kCandidate,
                       c.value(), /*at=*/0, /*value=*/0,
                       static_cast<std::uint32_t>(numVisited));
    const ConstraintGraph::Checkpoint cp = graph.checkpoint();
    const LongestPathEngine::Checkpoint ecp = engine.checkpoint();
    // Serialize c before every unvisited task sharing its resource.
    const ResourceId r = problem_.taskResources()[c.index()];
    const Duration dc = problem_.taskDelays()[c.index()];
    for (TaskId u : tasksOnResource_[r.index()]) {
      if (u == c || visited_[u.index()]) continue;
      graph.addEdge(c, u, dc, EdgeKind::kSerialization);
    }
    visited_[c.index()] = true;

    const LongestPathResult& lp = engine.compute(kAnchorTask);
    ++stats.longestPathRuns;
    if (lp.feasible && visit(graph, engine, stats, numVisited + 1)) {
      engine.release(ecp);  // edges stay in the graph, solution stays valid
      return true;
    }

    // Undo and try the next candidate; restoring the engine alongside the
    // graph keeps the search incremental across backtracks.
    visited_[c.index()] = false;
    graph.rollbackTo(cp);
    engine.restore(ecp);
    ++stats.backtracks;
    PAWS_TRACE_INSTANT(options_.obs.trace, obs::TraceEventKind::kBacktrack,
                       c.value(), /*at=*/0, /*value=*/0,
                       static_cast<std::uint32_t>(numVisited));
    if (backtracksLeft_ == 0) {
      budgetExhausted_ = true;
      return false;
    }
    --backtracksLeft_;
    if (budgetExhausted_) return false;
    if (stopReason_ != guard::StopReason::kNone) return false;
  }
  return false;
}

}  // namespace paws
