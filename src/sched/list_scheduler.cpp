#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "base/check.hpp"

namespace paws {

ListScheduler::ListScheduler(const Problem& problem,
                             ListSchedulerOptions options)
    : problem_(problem), options_(options) {}

ScheduleResult ListScheduler::schedule() {
  ScheduleResult out;
  const std::size_t n = problem_.numVertices();
  const Watts pmax = problem_.maxPower();

  std::vector<bool> placed(n, false);
  std::vector<Time> starts(n, Time::zero());
  placed[kAnchorTask.index()] = true;

  // Min-separation in-constraints per task (anchor releases included via
  // the constraint list; the implicit release-at-0 needs no entry).
  std::vector<std::vector<const TimingConstraint*>> minIn(n);
  for (const TimingConstraint& c : problem_.constraints()) {
    if (c.kind == TimingConstraint::Kind::kMinSeparation) {
      minIn[c.to.index()].push_back(&c);
    }
  }

  std::size_t remaining = problem_.numTasks();
  Time t = Time::zero();
  std::uint64_t iterationGuard = 4 * (remaining + 1) * (remaining + 1) + 64;

  while (remaining > 0) {
    if (iterationGuard-- == 0) {
      out.status = SchedStatus::kBudgetExhausted;
      out.message = "list scheduler failed to converge";
      return out;
    }

    // Earliest legal start per unplaced task whose predecessors all placed.
    auto enableTime = [&](TaskId v) -> std::optional<Time> {
      Time ready = Time::zero();
      for (const TimingConstraint* c : minIn[v.index()]) {
        if (!placed[c->from.index()]) return std::nullopt;
        ready = std::max(ready, starts[c->from.index()] + c->separation);
      }
      return ready;
    };

    // Current running set at t and its power / resource usage.
    Watts level = problem_.backgroundPower();
    std::vector<bool> busy(problem_.numResources(), false);
    Time nextRetire = Time::max();
    for (TaskId v : problem_.taskIds()) {
      if (!placed[v.index()]) continue;
      const Task& task = problem_.task(v);
      const Time end = starts[v.index()] + task.delay;
      if (starts[v.index()] <= t && t < end) {
        level += task.power;
        busy[task.resource.index()] = true;
        nextRetire = std::min(nextRetire, end);
      }
    }

    // Ready tasks, ordered by the power heuristic.
    std::vector<std::pair<TaskId, Time>> ready;
    Time nextEnable = Time::max();
    for (TaskId v : problem_.taskIds()) {
      if (placed[v.index()]) continue;
      const std::optional<Time> e = enableTime(v);
      if (!e) continue;
      if (*e <= t) {
        ready.emplace_back(v, *e);
      } else {
        nextEnable = std::min(nextEnable, *e);
      }
    }
    std::stable_sort(ready.begin(), ready.end(),
                     [this](const auto& a, const auto& b) {
                       const Watts pa = problem_.task(a.first).power;
                       const Watts pb = problem_.task(b.first).power;
                       return options_.highPowerFirst ? pa > pb : pa < pb;
                     });

    bool startedAny = false;
    for (const auto& [v, enable] : ready) {
      const Task& task = problem_.task(v);
      if (busy[task.resource.index()]) continue;
      if (level + task.power > pmax) continue;
      starts[v.index()] = t;
      placed[v.index()] = true;
      level += task.power;
      busy[task.resource.index()] = true;
      nextRetire = std::min(nextRetire, t + task.delay);
      --remaining;
      startedAny = true;
    }
    if (remaining == 0) break;

    if (!startedAny && nextRetire == Time::max() &&
        nextEnable == Time::max()) {
      out.status = SchedStatus::kTimingInfeasible;
      out.message =
          "greedy deadlock: unplaced tasks with unplaceable predecessors";
      return out;
    }
    // Advance to the next event: a task retiring or becoming enabled.
    Time next = std::min(nextRetire, nextEnable);
    if (startedAny) continue;  // New retire times; recompute at same t first.
    PAWS_CHECK(next > t);
    t = next;
  }

  // Report greedy max-separation violations (the baseline cannot see them).
  std::ostringstream violations;
  int count = 0;
  for (const TimingConstraint& c : problem_.constraints()) {
    if (c.kind != TimingConstraint::Kind::kMaxSeparation) continue;
    if (starts[c.to.index()] > starts[c.from.index()] + c.separation) {
      if (count++) violations << "; ";
      violations << problem_.task(c.from).name << " -> "
                 << problem_.task(c.to).name << " exceeds max "
                 << c.separation.ticks();
    }
  }
  out.status = SchedStatus::kOk;
  out.schedule = Schedule(&problem_, std::move(starts));
  if (count > 0) {
    out.message = "max-separation violations: " + violations.str();
  }
  return out;
}

}  // namespace paws
