// Feasible start-time windows [EST, LST] per task.
//
// The slack of Section 4.1 answers "how far can THIS task slip with every
// other start fixed"; the window analysis here answers the global version:
// over ALL schedules of the constraint system that finish within a horizon,
// what is each task's earliest (EST) and latest (LST) possible start?
//
//   * EST(v) = longest-path distance anchor -> v (the ASAP time);
//   * LST(v) = the greatest fixpoint of
//         LST(v) = min( horizon - d(v),
//                       min over out-edges (v -> u, w) of LST(u) - w )
//     i.e. a backward longest-path over the same edges.
//
// Windows drive the interactive story (drag handles in the Gantt chart are
// exactly [EST, LST]) and give tests a global invariant: every schedule
// any of our schedulers emits must place every task inside its window for
// the horizon it achieved.
#pragma once

#include <vector>

#include "base/interval.hpp"
#include "graph/constraint_graph.hpp"
#include "model/problem.hpp"

namespace paws {

struct StartWindow {
  Time earliest;
  Time latest;  ///< latest start keeping completion within the horizon

  [[nodiscard]] bool feasible() const { return earliest <= latest; }
  [[nodiscard]] Duration width() const { return latest - earliest; }
};

/// Computes [EST, LST] for every vertex of `graph` (vertex-indexed; the
/// anchor's window is [0, 0]). `graph` must be feasible (no positive
/// cycle); use the scheduler-decorated graph to include serialization
/// decisions, or the bare problem graph for the pre-scheduling view.
/// Tasks whose window is infeasible under `horizon` get earliest > latest.
std::vector<StartWindow> computeStartWindows(const Problem& problem,
                                             const ConstraintGraph& graph,
                                             Time horizon);

}  // namespace paws
