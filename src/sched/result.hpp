// Scheduler outcomes: a schedule or a structured failure, plus search
// statistics for the benches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sched/schedule.hpp"

namespace paws {

enum class SchedStatus : std::uint8_t {
  kOk,                ///< schedule produced (power-valid where applicable)
  kTimingInfeasible,  ///< no time-valid schedule exists / was found
  kPowerInfeasible,   ///< time-valid found, but the Pmax budget defeated the
                      ///< heuristics (paper: FAIL of Fig. 4)
  kBudgetExhausted,   ///< search budget (backtracks/delays/depth) ran out
};

const char* toString(SchedStatus status);

/// Search-effort counters, accumulated across recursions.
struct SchedulerStats {
  std::uint64_t longestPathRuns = 0;
  std::uint64_t backtracks = 0;      ///< timing candidate choices undone
  std::uint64_t delays = 0;          ///< max-power delay decisions
  std::uint64_t locks = 0;           ///< max-power lock decisions
  std::uint64_t recursions = 0;      ///< max-power reschedule recursions
  std::uint64_t scans = 0;           ///< min-power passes executed
  std::uint64_t improvements = 0;    ///< accepted min-power moves

  SchedulerStats& operator+=(const SchedulerStats& o) {
    longestPathRuns += o.longestPathRuns;
    backtracks += o.backtracks;
    delays += o.delays;
    locks += o.locks;
    recursions += o.recursions;
    scans += o.scans;
    improvements += o.improvements;
    return *this;
  }
};

struct ScheduleResult {
  SchedStatus status = SchedStatus::kTimingInfeasible;
  std::optional<Schedule> schedule;
  SchedulerStats stats;
  std::string message;

  [[nodiscard]] bool ok() const {
    return status == SchedStatus::kOk && schedule.has_value();
  }
};

}  // namespace paws
