// Scheduler outcomes: a schedule or a structured failure, plus search
// statistics for the benches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sched/schedule.hpp"

namespace paws {

namespace obs {
class MetricsRegistry;
}  // namespace obs

enum class SchedStatus : std::uint8_t {
  kOk,                ///< schedule produced (power-valid where applicable)
  kTimingInfeasible,  ///< no time-valid schedule exists / was found
  kPowerInfeasible,   ///< time-valid found, but the Pmax budget defeated the
                      ///< heuristics (paper: FAIL of Fig. 4)
  kBudgetExhausted,   ///< search budget (backtracks/delays/depth) ran out
  kInvalidInput,      ///< malformed request (e.g. repair inputs that do not
                      ///< describe the same task set) — rejected up front
  kDeadlineExceeded,  ///< wall-clock deadline or CancelToken tripped the run
                      ///< (guard::RunBudget); schedule, if present, is the
                      ///< best incumbent so far (anytime result, not proven
                      ///< optimal)
};

const char* toString(SchedStatus status);

/// Inverse of toString(SchedStatus); nullopt for unknown text.
std::optional<SchedStatus> schedStatusFromString(std::string_view text);

/// Search-effort counters, accumulated across recursions.
struct SchedulerStats {
  std::uint64_t longestPathRuns = 0;
  std::uint64_t backtracks = 0;      ///< timing candidate choices undone
  std::uint64_t delays = 0;          ///< max-power delay decisions
  std::uint64_t locks = 0;           ///< max-power lock decisions
  std::uint64_t recursions = 0;      ///< max-power reschedule recursions
  std::uint64_t scans = 0;           ///< min-power passes executed
  std::uint64_t improvements = 0;    ///< accepted min-power moves

  SchedulerStats& operator+=(const SchedulerStats& o) {
    longestPathRuns += o.longestPathRuns;
    backtracks += o.backtracks;
    delays += o.delays;
    locks += o.locks;
    recursions += o.recursions;
    scans += o.scans;
    improvements += o.improvements;
    return *this;
  }
};

/// SchedulerStats is kept as a thin fixed-field view for API
/// compatibility; the MetricsRegistry (obs/metrics.hpp) is the superset.
/// These two functions are the bridge: exportStats publishes the counters
/// under their stable "search.*" names, statsFromMetrics reconstructs the
/// struct from a registry. Names: search.longest_path_runs,
/// search.backtracks, search.delays, search.locks, search.recursions,
/// search.scans, search.improvements.
void exportStats(const SchedulerStats& stats, obs::MetricsRegistry& registry);
SchedulerStats statsFromMetrics(const obs::MetricsRegistry& registry);

struct ScheduleResult {
  SchedStatus status = SchedStatus::kTimingInfeasible;
  std::optional<Schedule> schedule;
  SchedulerStats stats;
  std::string message;

  [[nodiscard]] bool ok() const {
    return status == SchedStatus::kOk && schedule.has_value();
  }
};

}  // namespace paws
