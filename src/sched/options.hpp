// Tuning knobs for the three schedulers.
//
// Every heuristic the paper leaves open ("heuristically determined",
// "a heuristic order", "scan the schedule in various orders") is an explicit
// option here so the ablation benches can measure each choice.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "base/time.hpp"
#include "guard/budget.hpp"
#include "obs/context.hpp"

namespace paws {

/// How TimingScheduler orders candidate vertices at each step.
enum class CandidateOrder : std::uint8_t {
  kByLongestPath,  ///< earliest current longest-path distance first (default)
  kByIndex,        ///< declaration order
  kRandom,         ///< seeded shuffle (ablation baseline)
};

/// How MaxPowerScheduler picks the victim among simultaneous tasks.
enum class VictimOrder : std::uint8_t {
  kBySlack,  ///< largest slack first — the paper's heuristic
  kRandom,   ///< random victim (the paper's fallback, used for ablation)
};

/// Which start slot MinPowerScheduler tries for a gap-filling task.
enum class SlotHeuristic : std::uint8_t {
  kStartAtGap,     ///< start v exactly at the gap start t
  kFinishAtGapEnd, ///< finish v at the end of the gap beginning at t
  kRandom,         ///< random slot covering t (ablation)
};

/// Scan order over gap times in one MinPowerScheduler pass.
enum class ScanOrder : std::uint8_t {
  kForward,   ///< increasing time
  kBackward,  ///< decreasing time
  kRandom,    ///< seeded shuffle
};

struct TimingOptions {
  CandidateOrder candidateOrder = CandidateOrder::kByLongestPath;
  /// Backtracking budget: total number of candidate choices undone before
  /// giving up. The default covers every problem in the paper by orders of
  /// magnitude while bounding pathological searches.
  std::uint64_t maxBacktracks = 100000;
  std::uint32_t randomSeed = 1;
  /// Observability hooks (borrowed; see obs/context.hpp). Outer pipeline
  /// stages propagate their own context into unset nested contexts.
  obs::ObsContext obs;
  /// Wall-clock deadline / cancellation (guard/budget.hpp). Inherited from
  /// the outer pipeline stage like `obs`; inactive by default, in which
  /// case results are byte-identical to a build without guards.
  guard::RunBudget budget;
};

struct MaxPowerOptions {
  TimingOptions timing;
  VictimOrder victimOrder = VictimOrder::kBySlack;
  /// Spikes strictly before this instant are tolerated instead of
  /// eliminated — used by mid-flight repair, where frozen history may
  /// already violate a newly tightened budget and cannot move.
  std::int64_t ignoreSpikesBeforeTick =
      std::numeric_limits<std::int64_t>::min();
  /// Recursion depth for the reschedule path (Fig. 4's recursive call).
  std::uint32_t maxRecursionDepth = 64;
  /// Total delay decisions before giving up.
  std::uint64_t maxDelays = 100000;
  std::uint32_t randomSeed = 1;
  /// Evaluate spikes/victims through the incremental power::ProfileEngine
  /// instead of rebuilding a PowerProfile per round. Same schedules either
  /// way (the equivalence tests pin this); the flag exists so those tests
  /// can run the legacy rebuild path.
  bool incrementalProfile = true;
  obs::ObsContext obs;
  /// See TimingOptions::budget; propagated into `timing.budget`.
  guard::RunBudget budget;
};

struct MinPowerOptions {
  MaxPowerOptions maxPower;
  /// Scan passes; the paper scans "multiple times while altering some of
  /// the heuristics during each scan and takes the best results". Each pass
  /// cycles through scan orders and slot heuristics.
  std::uint32_t maxPasses = 8;
  ScanOrder scanOrder = ScanOrder::kForward;
  SlotHeuristic slotHeuristic = SlotHeuristic::kStartAtGap;
  /// Rotate scan order / slot heuristic between passes (paper's "altering
  /// some of the heuristics during each scan").
  bool rotateHeuristics = true;
  /// Warm start: a vertex-indexed start vector (slot 0 = anchor at 0) for
  /// a schedule of this problem that is already timing- AND Pmax-valid.
  /// When set, MinPowerScheduler::schedule() skips the timing + max-power
  /// stages entirely and runs only the gap-filling improvement from these
  /// starts, pinned into the constraint graph as anchor->v delay edges so
  /// the graph's ASAP solution equals the vector exactly. An infeasible,
  /// mis-sized or power-invalid vector is ignored (the full cold pipeline
  /// runs instead) — a stale warm start can cost time, never correctness.
  /// Used by the cache near-miss path (cache/cached_solve.cpp) to polish a
  /// revalidated schedule under changed Pmin instead of re-solving.
  std::optional<std::vector<Time>> initialStarts;
  std::uint32_t randomSeed = 1;
  /// Evaluate candidate gap-filling moves with power::ProfileEngine deltas
  /// (checkpoint / moveTask / restore) instead of a full profile rebuild
  /// per candidate. Byte-identical results; see MaxPowerOptions.
  bool incrementalProfile = true;
  obs::ObsContext obs;
  /// See TimingOptions::budget; propagated into `maxPower.budget`.
  guard::RunBudget budget;
};

}  // namespace paws
