#include "sched/schedule.hpp"

#include "base/check.hpp"

namespace paws {

Schedule::Schedule(const Problem* problem, std::vector<Time> starts)
    : problem_(problem), starts_(std::move(starts)) {
  PAWS_CHECK(problem_ != nullptr);
  PAWS_CHECK_MSG(starts_.size() == problem_->numVertices(),
                 "start vector size " << starts_.size() << " != vertex count "
                                      << problem_->numVertices());
  PAWS_CHECK_MSG(starts_[kAnchorTask.index()] == Time::zero(),
                 "anchor must start at time 0");
  finish_ = finishOf(*problem_, starts_);
}

Time Schedule::start(TaskId v) const {
  PAWS_CHECK(v.index() < starts_.size());
  return starts_[v.index()];
}

Time Schedule::end(TaskId v) const {
  return start(v) + problem_->task(v).delay;
}

Interval Schedule::interval(TaskId v) const {
  return Interval(start(v), end(v));
}

std::vector<TaskId> Schedule::activeAt(Time t) const {
  std::vector<TaskId> result;
  for (TaskId v : problem_->taskIds()) {
    if (isActiveAt(v, t)) result.push_back(v);
  }
  return result;
}

const PowerProfile& Schedule::powerProfile() const {
  if (!profile_) profile_ = profileOf(*problem_, starts_);
  return *profile_;
}

PowerProfile profileOf(const Problem& problem,
                       const std::vector<Time>& starts) {
  PowerProfileBuilder builder;
  for (std::size_t i = 1; i < problem.numVertices(); ++i) {
    const TaskId v(static_cast<std::uint32_t>(i));
    const Task& task = problem.task(v);
    builder.add(Interval(starts[i], starts[i] + task.delay), task.power);
  }
  return builder.build(problem.backgroundPower());
}

Time finishOf(const Problem& problem, const std::vector<Time>& starts) {
  Time finish = Time::zero();
  for (std::size_t i = 1; i < problem.numVertices(); ++i) {
    const TaskId v(static_cast<std::uint32_t>(i));
    const Time end = starts[i] + problem.task(v).delay;
    if (end > finish) finish = end;
  }
  return finish;
}

}  // namespace paws
