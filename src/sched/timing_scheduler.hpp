// TimingScheduler — Fig. 3 of the paper.
//
// Finds a time-valid schedule for a constraint graph: start times satisfy
// every min/max separation and tasks sharing a resource are serialized. The
// algorithm explores visiting orders of the vertices; when a vertex c is
// visited it is serialized *before* every not-yet-visited task on the same
// resource (edge c -> u with weight d(c)), so the visiting order restricted
// to each resource becomes its execution order. Start times are the
// single-source longest-path distances from the anchor; a positive cycle
// (infeasible serialization against a max constraint) triggers backtracking
// to an alternative visiting order. The search is exhaustive up to the
// backtrack budget, so it finds a time-valid schedule whenever one exists
// within that budget.
//
// The caller owns the graph: serialization edges added by a successful run
// REMAIN in it, because slack analysis and the two power schedulers must see
// them. A failed run leaves the graph exactly as it was.
#pragma once

#include <string>
#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "graph/constraint_graph.hpp"
#include "graph/longest_path.hpp"
#include "model/problem.hpp"
#include "sched/options.hpp"
#include "sched/result.hpp"

namespace paws {

class TimingScheduler {
 public:
  explicit TimingScheduler(const Problem& problem, TimingOptions options = {});

  struct Output {
    bool ok = false;
    bool budgetExhausted = false;
    /// kDeadline/kCancelled when options.budget tripped the search; the
    /// graph is rolled back to its entry state exactly as on any failure.
    guard::StopReason stopReason = guard::StopReason::kNone;
    /// Vertex-indexed start times (valid when ok).
    std::vector<Time> starts;
    std::string message;
  };

  /// Schedules over `graph` (the problem's graph plus any decision edges).
  /// On success serialization edges stay in `graph`; on failure the graph is
  /// rolled back to its entry state. `engine` must be bound to `graph`.
  Output run(ConstraintGraph& graph, LongestPathEngine& engine,
             SchedulerStats& stats);

 private:
  bool visit(ConstraintGraph& graph, LongestPathEngine& engine,
             SchedulerStats& stats, std::size_t numVisited);

  const Problem& problem_;
  TimingOptions options_;
  std::vector<bool> visited_;
  std::vector<std::vector<TaskId>> tasksOnResource_;
  /// Per-depth candidate buffers, reused across backtracks so the hot
  /// visit() loop never reallocates.
  std::vector<std::vector<TaskId>> candidateScratch_;
  std::uint64_t backtracksLeft_ = 0;
  bool budgetExhausted_ = false;
  guard::StopReason stopReason_ = guard::StopReason::kNone;
  guard::RunGuard guard_{guard::RunBudget{}};
  std::uint32_t rngState_ = 1;
};

}  // namespace paws
