#include "sched/exhaustive_scheduler.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>
#include <span>
#include <unordered_set>
#include <vector>

#include "base/check.hpp"
#include "exec/jobs.hpp"
#include "guard/budget.hpp"
#include "exec/parallel_for.hpp"
#include "exec/pool.hpp"
#include "graph/longest_path.hpp"
#include "obs/incumbents.hpp"
#include "obs/metrics.hpp"
#include "power/profile.hpp"
#include "power/profile_engine.hpp"

namespace paws {

namespace {

/// Constraints indexed per task for O(deg) pairwise checks.
struct Pair {
  TaskId other;
  Duration sep;
  bool otherIsFrom;
  bool isMin;
};

std::vector<std::vector<Pair>> buildTouching(const Problem& problem) {
  std::vector<std::vector<Pair>> touching(problem.numVertices());
  for (const TimingConstraint& c : problem.constraints()) {
    const bool isMin = c.kind == TimingConstraint::Kind::kMinSeparation;
    touching[c.from.index()].push_back(Pair{c.to, c.separation, false, isMin});
    touching[c.to.index()].push_back(Pair{c.from, c.separation, true, isMin});
  }
  return touching;
}

/// Static pruning tables, computed once per schedule() call and shared
/// read-only by every worker.
struct PruneTables {
  /// Earliest feasible start per task: the longest path from the anchor
  /// over the user-constraint graph. Any valid assignment satisfies
  /// sigma(v) >= windowLo[v], so smaller starts lead to subtrees without a
  /// single valid leaf. When the constraint system itself has a positive
  /// cycle, windowLo is set past the horizon so every range empties — the
  /// unpruned search would explore and find no valid leaf either.
  std::vector<Time> windowLo;
  /// Latest feasible start per task, from the longest path over the
  /// reversed edges: an original path v -> anchor of weight W forces
  /// sigma(v) <= -W. hasHi marks tasks with any such path; the rest are
  /// bounded by the horizon alone.
  std::vector<Time> windowHi;
  std::vector<std::uint8_t> hasHi;
  /// suffixFloorMwt[k] = sum over tasks i >= k of the minimum energy above
  /// Pmin that placing task i must add to any profile that sits at or
  /// above the background level everywhere:
  ///     d_i * (max(0, bg + p_i - Pmin) - max(0, bg - Pmin)).
  /// The increment of x -> max(0, x - Pmin) is non-decreasing in x, so the
  /// cheapest placement lands on bare background. Size n + 1.
  std::vector<std::int64_t> suffixFloorMwt;
  /// tailFinish[k] = max over tasks i >= k of windowLo[i] + d_i — a lower
  /// bound on the finish time of every completion. Size n + 1.
  std::vector<Time> tailFinish;
  /// prevEquiv[k] = largest j < k interchangeable with task k (0 = none);
  /// symmetry canonicalization raises k's start lower bound to starts[j].
  std::vector<std::uint32_t> prevEquiv;
  /// lastDependent[i] = largest task index whose placement can still read
  /// starts[i]: constraint partners, later same-resource tasks, and later
  /// members of i's symmetry class. Placed tasks with lastDependent <= k
  /// are invisible to every completion past depth k and stay out of the
  /// dominance signature.
  std::vector<std::uint32_t> lastDependent;
};

PruneTables buildPruneTables(const Problem& problem, Time horizon,
                             const std::vector<std::vector<Pair>>& touching) {
  const std::size_t n = problem.numVertices();
  PruneTables t;
  t.windowLo.assign(n, Time::zero());
  t.windowHi.assign(n, Time::zero());
  t.hasHi.assign(n, 0);
  t.suffixFloorMwt.assign(n + 1, 0);
  t.tailFinish.assign(n + 1, Time::minusInfinity());
  t.prevEquiv.assign(n, 0);
  t.lastDependent.assign(n, 0);

  const std::span<const Duration> delays = problem.taskDelays();
  const std::span<const Watts> powers = problem.taskPowers();
  const std::span<const ResourceId> resources = problem.taskResources();

  // Start windows from the user-constraint graph (release + min/max edges
  // only — the exhaustive search adds no serialization edges, it checks
  // resource overlap directly, so these longest paths bound every leaf).
  ConstraintGraph fwdGraph = problem.buildGraph();
  LongestPathEngine fwd(fwdGraph);
  const LongestPathResult& fwdRes = fwd.compute(kAnchorTask);
  ConstraintGraph revGraph(n);
  revGraph.reserveEdges(fwdGraph.numEdges());
  for (const ConstraintEdge& e : fwdGraph.edges()) {
    revGraph.addEdge(e.to, e.from, e.weight, e.kind);
  }
  LongestPathEngine bwd(revGraph);
  const LongestPathResult& bwdRes = bwd.compute(kAnchorTask);
  if (!fwdRes.feasible || !bwdRes.feasible) {
    for (std::size_t i = 1; i < n; ++i) {
      t.windowLo[i] = horizon + Duration(1);
    }
  } else {
    for (std::size_t i = 1; i < n; ++i) {
      t.windowLo[i] = std::max(Time::zero(), fwdRes.dist[i]);
      const Time back = bwdRes.dist[i];
      if (back != Time::minusInfinity()) {
        t.hasHi[i] = 1;
        t.windowHi[i] = Time::zero() - (back - Time::zero());
      }
    }
  }

  // Remaining-task cost floor and critical-path tail finish, accumulated
  // back to front.
  const std::int64_t bgMw = problem.backgroundPower().milliwatts();
  const std::int64_t pminMw = problem.minPower().milliwatts();
  const auto clampPos = [](std::int64_t x) { return x > 0 ? x : 0; };
  for (std::size_t i = n; i-- > 1;) {
    const std::int64_t floorMw =
        clampPos(bgMw + powers[i].milliwatts() - pminMw) -
        clampPos(bgMw - pminMw);
    t.suffixFloorMwt[i] =
        t.suffixFloorMwt[i + 1] + delays[i].ticks() * floorMw;
    t.tailFinish[i] = std::max(t.tailFinish[i + 1], t.windowLo[i] + delays[i]);
  }

  // Interchangeable-task classes for symmetry breaking: identical delay,
  // power and resource, identical constraint profile towards every other
  // task, and no constraint within the pair (swapping mutually-constrained
  // tasks is not an invariance). Swapping starts inside such a class maps
  // valid leaves to valid leaves with the same (cost, finish). Classes are
  // grown with an all-members check so membership is pairwise.
  std::vector<std::vector<std::array<std::int64_t, 4>>> csig(n);
  for (std::size_t i = 1; i < n; ++i) {
    for (const Pair& pr : touching[i]) {
      csig[i].push_back({static_cast<std::int64_t>(pr.other.value()),
                         pr.otherIsFrom ? 1 : 0, pr.isMin ? 1 : 0,
                         pr.sep.ticks()});
    }
    std::sort(csig[i].begin(), csig[i].end());
  }
  const auto constrained = [&touching](std::size_t i, std::size_t j) {
    for (const Pair& pr : touching[i]) {
      if (pr.other.index() == j) return true;
    }
    return false;
  };
  const auto interchangeable = [&](std::size_t i, std::size_t j) {
    return delays[i] == delays[j] && powers[i] == powers[j] &&
           resources[i] == resources[j] && csig[i] == csig[j] &&
           !constrained(i, j);
  };
  std::vector<std::vector<std::uint32_t>> classes;
  for (std::size_t i = 1; i < n; ++i) {
    bool placed = false;
    for (std::vector<std::uint32_t>& cls : classes) {
      bool fitsAll = true;
      for (std::uint32_t m : cls) {
        if (!interchangeable(m, i)) {
          fitsAll = false;
          break;
        }
      }
      if (fitsAll) {
        t.prevEquiv[i] = cls.back();
        cls.push_back(static_cast<std::uint32_t>(i));
        placed = true;
        break;
      }
    }
    if (!placed) classes.push_back({static_cast<std::uint32_t>(i)});
  }
  std::vector<std::uint32_t> lastEquiv(n, 0);
  for (const std::vector<std::uint32_t>& cls : classes) {
    for (std::uint32_t m : cls) lastEquiv[m] = cls.back();
  }

  for (std::size_t i = 1; i < n; ++i) {
    std::uint32_t last = static_cast<std::uint32_t>(i);
    for (const Pair& pr : touching[i]) {
      last = std::max(last, pr.other.value());
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (resources[j] == resources[i]) {
        last = std::max(last, static_cast<std::uint32_t>(j));
      }
    }
    t.lastDependent[i] = std::max(last, lastEquiv[i]);
  }
  return t;
}

/// Which prunings a worker applies, plus the shared read-only tables.
struct PruneConfig {
  bool dominance = false;
  bool symmetry = false;
  bool bounds = false;
  const PruneTables* tables = nullptr;
};

/// Canonical state signature for the dominance table: 128 bits mixed from
/// (depth, merged placed-prefix profile, constraint-relevant frontier
/// starts). A collision would silently drop a live subtree; at the table's
/// entry cap the 128-bit birthday bound keeps that probability ~2^-85.
struct Sig {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const Sig&) const = default;
};
struct SigHash {
  std::size_t operator()(const Sig& s) const {
    return static_cast<std::size_t>(s.a ^ (s.b * 0x9e3779b97f4a7c15ULL));
  }
};

/// Per-worker dominance-table entry cap (16 B per entry): beyond it the
/// table stops growing but keeps serving probes, so memory stays bounded
/// and the search stays deterministic.
constexpr std::size_t kMaxDominanceEntries = std::size_t(1) << 20;

/// Mirrors ProfileEngine::mixState on an immutable profile (segments are
/// already merged), so legacy-mode signatures equal incremental-mode ones
/// and both modes make identical dominance decisions.
void mixProfile(const PowerProfile& p, std::uint64_t& h1, std::uint64_t& h2) {
  power::ProfileEngine::mixHash(h1, h2,
                                static_cast<std::uint64_t>(p.finish().ticks()));
  for (const PowerSegment& s : p.segments()) {
    power::ProfileEngine::mixHash(
        h1, h2, static_cast<std::uint64_t>(s.interval.begin().ticks()));
    power::ProfileEngine::mixHash(
        h1, h2, static_cast<std::uint64_t>(s.power.milliwatts()));
  }
}

/// State shared by every worker of one search. The cost bound only ever
/// holds costs of *achieved* valid leaves, so it is always >= the optimal
/// cost and the strictly-greater prefix pruning can never cut a leaf tying
/// the final optimum on cost — parallel pruning removes only subtrees the
/// serial reduction would discard anyway, which is what makes the parallel
/// result bit-identical.
/// Why the whole search stopped early; the first worker to trip wins (CAS
/// from kStopNone) so concurrent trips can't overwrite each other's reason.
enum StopCode : std::uint8_t {
  kStopNone = 0,
  kStopNodeBudget = 1,
  kStopDeadline = 2,
  kStopCancelled = 3,
};

struct SearchShared {
  std::atomic<std::int64_t> bestCostMwt{
      std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::uint64_t> nodesExplored{0};
  std::atomic<std::uint8_t> stop{kStopNone};
  std::uint64_t maxNodes = 0;
  /// Anytime-curve sink (borrowed, may be null). Recorded only on a
  /// successful CAS-min, i.e. when a worker genuinely lowered the global
  /// bound; the log's own monotonicity filter absorbs publication races.
  obs::IncumbentLog* incumbents = nullptr;
  // Aggregated per-worker profile effort (flushed once per worker, not per
  // node — the dfs hot loop stays atomic-free).
  std::atomic<std::uint64_t> profileUpdates{0};
  std::atomic<std::uint64_t> profileRebuilds{0};
  // Aggregated pruning counters, flushed per worker like the profile ones.
  std::atomic<std::uint64_t> prunedDominance{0};
  std::atomic<std::uint64_t> prunedSymmetry{0};
  std::atomic<std::uint64_t> prunedBound{0};

  [[nodiscard]] bool stopped() const {
    return stop.load(std::memory_order_relaxed) != kStopNone;
  }
  /// Latch a stop reason; only the first publisher's reason sticks.
  void publishStop(StopCode code) {
    std::uint8_t expected = kStopNone;
    stop.compare_exchange_strong(expected, code, std::memory_order_relaxed);
  }
};

/// A worker's chunk-local winner: the first leaf in its DFS order that
/// achieves the local lexicographic minimum of (energy cost, finish).
struct LocalBest {
  std::vector<Time> starts;
  Energy cost;
  Time finish;
  bool have = false;
  /// True while `have` reflects a warm-start phantom (empty `starts`)
  /// rather than a leaf this worker reached; cleared on first acceptance.
  bool phantom = false;
};

/// Folds `lb` into `acc` with the same strict-improvement rule the serial
/// DFS uses, so applying it in chunk order (= task-1 start-time order = the
/// serial DFS's outermost loop order) reproduces the serial winner.
void mergeBest(LocalBest& acc, LocalBest&& lb) {
  if (!lb.have) return;
  if (!acc.have || lb.cost < acc.cost ||
      (lb.cost == acc.cost && lb.finish < acc.finish)) {
    acc = std::move(lb);
  }
}

/// One DFS worker over a contiguous range of task-1 start times. Parallel
/// callers hand each worker its own Problem clone; nothing here mutates
/// state shared with other workers except the atomics in SearchShared.
class Worker {
 public:
  Worker(const Problem& problem, const std::vector<std::vector<Pair>>& touching,
         Time horizon, SearchShared& shared, bool incremental,
         const PruneConfig& prune, const guard::RunBudget& budget)
      : problem_(problem),
        touching_(touching),
        horizon_(horizon),
        shared_(shared),
        pmin_(problem.minPower()),
        pmax_(problem.maxPower()),
        incremental_(incremental),
        prune_(prune),
        // Each worker strides its own clock reads: one steady_clock::now()
        // per 1024 expanded nodes keeps deadline latency ~microseconds at
        // search speed while the clean-path overhead stays a branch.
        guard_(budget, 1024),
        engine_(problem.backgroundPower(), problem.minPower(),
                problem.maxPower()),
        delays_(problem.taskDelays()),
        powers_(problem.taskPowers()),
        resources_(problem.taskResources()),
        starts_(problem.numVertices(), Time::zero()) {}

  ~Worker() {
    // Flush this worker's profile effort into the shared aggregates.
    shared_.profileUpdates.fetch_add(engine_.incrementalUpdates() +
                                         legacyUpdates_,
                                     std::memory_order_relaxed);
    shared_.profileRebuilds.fetch_add(engine_.rebuilds() + legacyRebuilds_,
                                      std::memory_order_relaxed);
    shared_.prunedDominance.fetch_add(prunedDominance_,
                                      std::memory_order_relaxed);
    shared_.prunedSymmetry.fetch_add(prunedSymmetry_,
                                     std::memory_order_relaxed);
    shared_.prunedBound.fetch_add(prunedBound_, std::memory_order_relaxed);
  }

  /// Explores task 1's start over [t1Lo, t1Hi] (inclusive, additionally
  /// clamped by the horizon), deeper tasks over the full horizon.
  void search(Time t1Lo, Time t1Hi) {
    t1Lo_ = t1Lo;
    t1Hi_ = t1Hi;
    dfs(1);
  }

  /// Pre-loads the local incumbent with the warm-start phantom
  /// (cost, finish + 1) so the cost-tie finish cut is armed from node 0.
  /// See ExhaustiveOptions::initialIncumbentFinish for the identity proof.
  void seedIncumbent(Energy cost, Time finish) {
    best_.starts.clear();
    best_.cost = cost;
    best_.finish = finish + Duration(1);
    best_.have = true;
    best_.phantom = true;
  }

  LocalBest takeBest() {
    // A phantom no leaf improved on must not escape: it has no starts and
    // only exists to prune. The chunk reports "nothing found" instead,
    // which is merge-identical — any unbeaten phantom is lex-above the
    // global winner, so cold search would discard this chunk's result too.
    if (best_.phantom) return LocalBest{};
    return std::move(best_);
  }

 private:
  void dfs(std::size_t k);
  void leaf();
  /// Incumbent-relative cost/finish pruning for the placed prefix [1..k]
  /// with energy-above `aboveMwt` and span end `prefixFinish`. With
  /// pruneBounds off this is exactly the baseline "prefix already costs
  /// more than the bound" check (uncounted); with it on, the remaining-
  /// task floor and the finish tie-break are added and rejections count
  /// into prunedBound_.
  bool costBoundPrunes(std::size_t k, std::int64_t aboveMwt,
                       Time prefixFinish);
  /// Mixes depth and the constraint-relevant placed starts; the caller
  /// then mixes the prefix-profile fingerprint on top.
  [[nodiscard]] Sig frontierSig(std::size_t k) const;
  /// Probes (and below the cap, populates) the dominance table.
  bool dominated(const Sig& sig);

  const Problem& problem_;
  const std::vector<std::vector<Pair>>& touching_;
  const Time horizon_;
  SearchShared& shared_;
  const Watts pmin_;
  const Watts pmax_;
  const bool incremental_;
  const PruneConfig prune_;
  guard::RunGuard guard_;
  power::ProfileEngine engine_;  // placed-prefix profile (incremental mode)
  std::span<const Duration> delays_;
  std::span<const Watts> powers_;
  std::span<const ResourceId> resources_;
  std::unordered_set<Sig, SigHash> tt_;  // dominance transposition table
  std::uint64_t legacyUpdates_ = 0;
  std::uint64_t legacyRebuilds_ = 0;
  std::uint64_t prunedDominance_ = 0;
  std::uint64_t prunedSymmetry_ = 0;
  std::uint64_t prunedBound_ = 0;
  Time t1Lo_;
  Time t1Hi_;
  std::vector<Time> starts_;
  LocalBest best_;
};

bool Worker::costBoundPrunes(std::size_t k, std::int64_t aboveMwt,
                             Time prefixFinish) {
  const std::int64_t bound =
      shared_.bestCostMwt.load(std::memory_order_relaxed);
  if (!prune_.bounds) return aboveMwt > bound;
  const PruneTables& tb = *prune_.tables;
  // The shared bound only ever holds achieved leaf costs (>= the optimal
  // cost), and the floor only discards leaves strictly above it, so a
  // subtree containing the final winner is never cut.
  const std::int64_t costLb = aboveMwt + tb.suffixFloorMwt[k + 1];
  bool pruned = costLb > bound;
  if (!pruned && best_.have) {
    const std::int64_t bestMwt = best_.cost.milliwattTicks();
    if (costLb > bestMwt) {
      // Every leaf below costs strictly more than the local incumbent —
      // none can pass the strict-improvement rule.
      pruned = true;
    } else if (costLb == bestMwt) {
      // Cost can at best tie; the finish lower bound must then beat the
      // incumbent strictly for any leaf below to matter. On the path to
      // the lex-first optimal leaf, best_.finish is strictly larger than
      // that leaf's finish (an equal incumbent would be a lex-earlier
      // optimum), so that path is never cut here.
      const Time finishLb = std::max(prefixFinish, tb.tailFinish[k + 1]);
      pruned = finishLb >= best_.finish;
    }
  }
  if (pruned) ++prunedBound_;
  return pruned;
}

Sig Worker::frontierSig(std::size_t k) const {
  Sig s{0xcbf29ce484222325ULL, 0x9e3779b97f4a7c15ULL};
  power::ProfileEngine::mixHash(s.a, s.b, static_cast<std::uint64_t>(k));
  const PruneTables& tb = *prune_.tables;
  for (std::size_t i = 1; i <= k; ++i) {
    if (tb.lastDependent[i] <= k) continue;
    power::ProfileEngine::mixHash(s.a, s.b, static_cast<std::uint64_t>(i));
    power::ProfileEngine::mixHash(
        s.a, s.b, static_cast<std::uint64_t>(starts_[i].ticks()));
  }
  return s;
}

bool Worker::dominated(const Sig& sig) {
  if (tt_.size() >= kMaxDominanceEntries) {
    const bool hit = tt_.contains(sig);
    if (hit) ++prunedDominance_;
    return hit;
  }
  const bool repeat = !tt_.insert(sig).second;
  if (repeat) ++prunedDominance_;
  return repeat;
}

void Worker::dfs(std::size_t k) {
  if (shared_.stopped()) return;
  const std::size_t n = problem_.numVertices();
  if (k == n) {
    leaf();
    return;
  }
  const TaskId v(static_cast<std::uint32_t>(k));
  const Duration delay = delays_[k];
  const Watts power = powers_[k];
  const ResourceId resource = resources_[k];
  Time lo = Time::zero();
  Time hi = horizon_ - delay;  // inclusive upper bound
  if (k == 1) {
    lo = std::max(lo, t1Lo_);
    hi = std::min(hi, t1Hi_);
  }
  const auto rangeSize = [](Time rlo, Time rhi) -> std::int64_t {
    const std::int64_t ticks = (rhi - rlo).ticks() + 1;
    return ticks > 0 ? ticks : 0;
  };
  if (prune_.bounds) {
    // Clamp to the task's static feasibility window; starts outside it
    // violate some user constraint in every completion.
    const PruneTables& tb = *prune_.tables;
    const std::int64_t before = rangeSize(lo, hi);
    lo = std::max(lo, tb.windowLo[k]);
    if (tb.hasHi[k]) hi = std::min(hi, tb.windowHi[k]);
    prunedBound_ += static_cast<std::uint64_t>(before - rangeSize(lo, hi));
  }
  if (prune_.symmetry) {
    const std::uint32_t prev = prune_.tables->prevEquiv[k];
    if (prev != 0) {
      // Canonical order inside a symmetry class: non-decreasing starts in
      // task-index order. The lex-first optimal leaf is the lex-smallest
      // member of its orbit, which is exactly the canonical one.
      const std::int64_t before = rangeSize(lo, hi);
      lo = std::max(lo, starts_[prev]);
      prunedSymmetry_ +=
          static_cast<std::uint64_t>(before - rangeSize(lo, hi));
    }
  }
  for (Time t = lo; t <= hi; t += Duration(1)) {
    if (shared_.nodesExplored.fetch_add(1, std::memory_order_relaxed) + 1 >
        shared_.maxNodes) {
      shared_.publishStop(kStopNodeBudget);
      return;
    }
    if (guard_.poll() != guard::StopReason::kNone) {
      shared_.publishStop(guard_.reason() == guard::StopReason::kCancelled
                              ? kStopCancelled
                              : kStopDeadline);
      return;
    }
    starts_[k] = t;

    // Pairwise checks against placed tasks (anchor is placed at 0).
    bool violated = false;
    for (const Pair& pr : touching_[k]) {
      if (pr.other.index() >= k && pr.other != kAnchorTask) continue;
      const Time o = starts_[pr.other.index()];
      const Duration gap = pr.otherIsFrom ? (t - o) : (o - t);
      if (pr.isMin ? gap < pr.sep : gap > pr.sep) {
        violated = true;
        break;
      }
    }
    if (violated) continue;
    const Interval placed(t, t + delay);
    for (std::size_t j = 1; j < k && !violated; ++j) {
      if (resources_[j] != resource) continue;
      const Interval b(starts_[j], starts_[j] + delays_[j]);
      violated = placed.overlaps(b);
    }
    if (violated) continue;

    // Monotone power prunings on the placed prefix. Incremental mode keeps
    // the prefix profile alive in the engine — one addTask per placement,
    // one removeTask per backtrack, O(log k + touched segments) each — and
    // reads both pruning quantities from cached aggregates. The final
    // profile dominates the prefix pointwise (tasks only add power, and
    // the final span only extends the background), so the prefix's energy
    // above pmin lower-bounds the final energy cost.
    if (incremental_) {
      engine_.addTask(v, placed, power);
      bool pruned = engine_.firstSpike().has_value();
      if (!pruned) {
        pruned = costBoundPrunes(k, engine_.energyAbove().milliwattTicks(),
                                 engine_.finish());
      }
      if (!pruned && prune_.dominance && k + 1 < n) {
        Sig sig = frontierSig(k);
        engine_.mixState(sig.a, sig.b);
        pruned = dominated(sig);
      }
      if (pruned) {
        engine_.removeTask(v);
        continue;
      }
      dfs(k + 1);
      engine_.removeTask(v);
      if (shared_.stopped()) return;
      continue;
    }

    const PowerProfile prefix = [&] {
      PowerProfileBuilder b;
      for (std::size_t i = 1; i <= k; ++i) {
        b.add(Interval(starts_[i], starts_[i] + delays_[i]), powers_[i]);
      }
      return b.build(problem_.backgroundPower());
    }();
    ++legacyRebuilds_;
    if (prefix.firstSpike(pmax_)) continue;
    if (costBoundPrunes(k, prefix.energyAbove(pmin_).milliwattTicks(),
                        prefix.finish())) {
      continue;
    }
    if (prune_.dominance && k + 1 < n) {
      Sig sig = frontierSig(k);
      mixProfile(prefix, sig.a, sig.b);
      if (dominated(sig)) continue;
    }

    dfs(k + 1);
    if (shared_.stopped()) return;
  }
}

void Worker::leaf() {
  Energy cost;
  Time finish;
  if (incremental_) {
    // The engine holds every task's contribution here (k == n), i.e.
    // exactly profileOf(problem_, starts_) — all leaf quantities are
    // cached aggregates.
    if (engine_.firstSpike().has_value()) return;
    cost = engine_.energyAbove();
    finish = engine_.finish();
  } else {
    const PowerProfile profile = profileOf(problem_, starts_);
    ++legacyRebuilds_;
    if (profile.firstSpike(pmax_)) return;
    cost = profile.energyAbove(pmin_);
    finish = finishOf(problem_, starts_);
  }
  if (!best_.have || cost < best_.cost ||
      (cost == best_.cost && finish < best_.finish)) {
    best_.starts = starts_;
    best_.cost = cost;
    best_.finish = finish;
    best_.have = true;
    best_.phantom = false;
    // Publish to the shared pruning bound (CAS-min). Relaxed is enough:
    // the bound is a pruning accelerator, and a stale read merely prunes
    // less; every stored value is a genuinely achieved leaf cost.
    std::int64_t cur = shared_.bestCostMwt.load(std::memory_order_relaxed);
    while (cost.milliwattTicks() < cur) {
      if (shared_.bestCostMwt.compare_exchange_weak(
              cur, cost.milliwattTicks(), std::memory_order_relaxed)) {
        if (shared_.incumbents != nullptr) {
          shared_.incumbents->record(cost.milliwattTicks());
        }
        break;
      }
    }
  }
}

}  // namespace

ExhaustiveScheduler::ExhaustiveScheduler(const Problem& problem,
                                         ExhaustiveOptions options)
    : problem_(problem), options_(options) {}

ScheduleResult ExhaustiveScheduler::schedule() {
  ScheduleResult out;
  outcome_ = {};
  const std::size_t n = problem_.numVertices();

  // Horizon default: serial span (sum of delays) plus the largest declared
  // separation — any schedule worth considering for a small instance fits.
  Time horizon;
  if (options_.horizon) {
    horizon = *options_.horizon;
  } else {
    Duration total = Duration::zero();
    for (TaskId v : problem_.taskIds()) total += problem_.task(v).delay;
    Duration maxSep = Duration::zero();
    for (const TimingConstraint& c : problem_.constraints()) {
      maxSep = std::max(maxSep, c.separation);
    }
    horizon = Time::zero() + total + maxSep;
  }

  const std::vector<std::vector<Pair>> touching = buildTouching(problem_);
  PruneTables tables;
  PruneConfig prune;
  prune.tables = &tables;
  if (options_.pruneDominance || options_.pruneSymmetry ||
      options_.pruneBounds) {
    tables = buildPruneTables(problem_, horizon, touching);
    prune.dominance = options_.pruneDominance;
    prune.symmetry = options_.pruneSymmetry;
    prune.bounds = options_.pruneBounds;
  }
  SearchShared shared;
  shared.maxNodes = options_.maxNodes;
  shared.incumbents = options_.obs.incumbents;
  if (options_.initialIncumbent.has_value()) {
    // Warm start: prime the shared cost bound with the caller's known-valid
    // schedule cost (see ExhaustiveOptions::initialIncumbent for why this
    // keeps the result byte-identical). Not published to the incumbent
    // log — only costs achieved by leaves of this search are incumbents.
    shared.bestCostMwt.store(options_.initialIncumbent->milliwattTicks(),
                             std::memory_order_relaxed);
  }
  // With the seed's finish too, each worker's local incumbent can start as
  // the phantom (cost, finish + 1) and arm the cost-tie finish cut from
  // node 0 — the shared bound alone cannot cut cost ties. Identity proof
  // at ExhaustiveOptions::initialIncumbentFinish.
  const bool seedLocal = options_.initialIncumbent.has_value() &&
                         options_.initialIncumbentFinish.has_value();

  // Pin the relative timeout to one absolute deadline here, so every
  // worker (and any caller-nested stage) races the same clock.
  const guard::RunBudget budget = options_.budget.resolved();

  // Number of candidate start times for task 1 — the axis the parallel
  // split partitions.
  std::int64_t numT1 = 0;
  if (n >= 2) {
    numT1 = horizon.ticks() - problem_.task(TaskId(1)).delay.ticks() + 1;
  }

  const std::size_t jobs = exec::resolveJobs(options_.jobs);
  LocalBest best;
  if (jobs <= 1 || numT1 < 2) {
    // Serial: one worker over the whole range, on the calling thread.
    Worker w(problem_, touching, horizon, shared, options_.incrementalProfile,
             prune, budget);
    if (seedLocal) {
      w.seedIncumbent(*options_.initialIncumbent,
                      *options_.initialIncumbentFinish);
    }
    w.search(Time::zero(), horizon);
    best = w.takeBest();
  } else {
    // More chunks than workers so an uneven subtree doesn't serialize the
    // tail; the chunk boundaries depend only on (numT1, jobs).
    const std::size_t numChunks = static_cast<std::size_t>(
        std::min<std::int64_t>(numT1, static_cast<std::int64_t>(jobs) * 4));
    exec::Pool pool(jobs);
    std::vector<LocalBest> results = exec::parallelMap(
        pool, numChunks, [&](std::size_t i) -> LocalBest {
          const std::int64_t lo =
              numT1 * static_cast<std::int64_t>(i) /
              static_cast<std::int64_t>(numChunks);
          const std::int64_t hi =
              numT1 * static_cast<std::int64_t>(i + 1) /
                  static_cast<std::int64_t>(numChunks) -
              1;
          const Problem clone = problem_;  // worker-private scratch
          Worker w(clone, touching, horizon, shared,
                   options_.incrementalProfile, prune, budget);
          if (seedLocal) {
            w.seedIncumbent(*options_.initialIncumbent,
                            *options_.initialIncumbentFinish);
          }
          w.search(Time::zero() + Duration(lo), Time::zero() + Duration(hi));
          return w.takeBest();
        });
    // Ordered reduction: chunk index order is task-1 start-time order, the
    // serial DFS's outermost loop — first winner on ties, like the DFS.
    for (LocalBest& lb : results) mergeBest(best, std::move(lb));
    if (options_.obs.metrics != nullptr) {
      pool.exportMetrics(*options_.obs.metrics);
    }
  }

  outcome_.nodesExplored =
      shared.nodesExplored.load(std::memory_order_relaxed);
  outcome_.prunedDominance =
      shared.prunedDominance.load(std::memory_order_relaxed);
  outcome_.prunedSymmetry =
      shared.prunedSymmetry.load(std::memory_order_relaxed);
  outcome_.prunedBound = shared.prunedBound.load(std::memory_order_relaxed);
  const auto stop =
      static_cast<StopCode>(shared.stop.load(std::memory_order_relaxed));
  outcome_.provenOptimal = stop == kStopNone;
  outcome_.stopReason = stop == kStopDeadline    ? guard::StopReason::kDeadline
                        : stop == kStopCancelled ? guard::StopReason::kCancelled
                                                 : guard::StopReason::kNone;
  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics->add("exhaustive.nodes", outcome_.nodesExplored);
    options_.obs.metrics->add("exhaustive.pruned_dominance",
                              outcome_.prunedDominance);
    options_.obs.metrics->add("exhaustive.pruned_symmetry",
                              outcome_.prunedSymmetry);
    options_.obs.metrics->add("exhaustive.pruned_bound",
                              outcome_.prunedBound);
    options_.obs.metrics->add(
        "profile.incremental_updates",
        shared.profileUpdates.load(std::memory_order_relaxed));
    options_.obs.metrics->add(
        "profile.rebuilds",
        shared.profileRebuilds.load(std::memory_order_relaxed));
    if (stop == kStopDeadline) {
      options_.obs.metrics->add("guard.deadline_trips", 1);
    } else if (stop == kStopCancelled) {
      options_.obs.metrics->add("guard.cancels", 1);
    }
  }

  if (outcome_.stopReason != guard::StopReason::kNone) {
    // Anytime result: the best incumbent found before the trip, flagged so
    // callers know it is not proven optimal.
    out.status = SchedStatus::kDeadlineExceeded;
    out.message = stop == kStopCancelled
                      ? "search cancelled"
                      : "wall-clock deadline exceeded";
    if (best.have) {
      out.schedule = Schedule(&problem_, best.starts);
      out.message += "; returning best incumbent (not proven optimal)";
      if (options_.obs.metrics != nullptr) {
        options_.obs.metrics->add("guard.incumbent_returned", 1);
      }
    } else {
      out.message += " before any valid schedule was found";
    }
    return out;
  }

  if (!best.have) {
    out.status = stop == kStopNodeBudget ? SchedStatus::kBudgetExhausted
                                         : SchedStatus::kPowerInfeasible;
    out.message = stop == kStopNodeBudget
                      ? "node budget exhausted before any valid schedule"
                      : "no valid schedule within the horizon";
    return out;
  }
  out.status = SchedStatus::kOk;
  out.schedule = Schedule(&problem_, best.starts);
  return out;
}

}  // namespace paws
