#include "sched/exhaustive_scheduler.hpp"

#include <algorithm>
#include <vector>

#include "base/check.hpp"
#include "power/profile.hpp"

namespace paws {

ExhaustiveScheduler::ExhaustiveScheduler(const Problem& problem,
                                         ExhaustiveOptions options)
    : problem_(problem), options_(options) {}

ScheduleResult ExhaustiveScheduler::schedule() {
  ScheduleResult out;
  outcome_ = {};
  const std::size_t n = problem_.numVertices();

  // Horizon default: serial span (sum of delays) plus the largest declared
  // separation — any schedule worth considering for a small instance fits.
  Time horizon;
  if (options_.horizon) {
    horizon = *options_.horizon;
  } else {
    Duration total = Duration::zero();
    for (TaskId v : problem_.taskIds()) total += problem_.task(v).delay;
    Duration maxSep = Duration::zero();
    for (const TimingConstraint& c : problem_.constraints()) {
      maxSep = std::max(maxSep, c.separation);
    }
    horizon = Time::zero() + total + maxSep;
  }

  const Watts pmin = problem_.minPower();
  const Watts pmax = problem_.maxPower();

  std::vector<Time> starts(n, Time::zero());
  std::vector<Time> bestStarts;
  Energy bestCost;
  Time bestFinish;
  bool haveBest = false;
  bool budgetTripped = false;

  // Constraints indexed per task for O(deg) pairwise checks.
  struct Pair {
    TaskId other;
    Duration sep;
    bool otherIsFrom;
    bool isMin;
  };
  std::vector<std::vector<Pair>> touching(n);
  for (const TimingConstraint& c : problem_.constraints()) {
    const bool isMin = c.kind == TimingConstraint::Kind::kMinSeparation;
    touching[c.from.index()].push_back(Pair{c.to, c.separation, false, isMin});
    touching[c.to.index()].push_back(Pair{c.from, c.separation, true, isMin});
  }

  const auto leafMetrics = [&](const std::vector<Time>& s, Energy* cost,
                               Time* finish) {
    *cost = profileOf(problem_, s).energyAbove(pmin);
    *finish = finishOf(problem_, s);
  };

  // DFS over tasks 1..n-1.
  auto dfs = [&](auto&& self, std::size_t k) -> void {
    if (budgetTripped) return;
    if (k == n) {
      Energy cost;
      Time finish;
      leafMetrics(starts, &cost, &finish);
      const PowerProfile profile = profileOf(problem_, starts);
      if (profile.firstSpike(pmax)) return;
      if (!haveBest || cost < bestCost ||
          (cost == bestCost && finish < bestFinish)) {
        bestStarts = starts;
        bestCost = cost;
        bestFinish = finish;
        haveBest = true;
      }
      return;
    }
    const TaskId v(static_cast<std::uint32_t>(k));
    const Task& task = problem_.task(v);
    for (Time t = Time::zero(); t + task.delay <= horizon;
         t += Duration(1)) {
      if (++outcome_.nodesExplored > options_.maxNodes) {
        budgetTripped = true;
        return;
      }
      starts[k] = t;

      // Pairwise checks against placed tasks (anchor is placed at 0).
      bool violated = false;
      for (const Pair& pr : touching[k]) {
        if (pr.other.index() >= k && pr.other != kAnchorTask) continue;
        const Time o = starts[pr.other.index()];
        const Duration gap = pr.otherIsFrom ? (t - o) : (o - t);
        if (pr.isMin ? gap < pr.sep : gap > pr.sep) {
          violated = true;
          break;
        }
      }
      if (violated) continue;
      for (std::size_t j = 1; j < k && !violated; ++j) {
        const TaskId u(static_cast<std::uint32_t>(j));
        if (problem_.task(u).resource != task.resource) continue;
        const Interval a(t, t + task.delay);
        const Interval b(starts[j], starts[j] + problem_.task(u).delay);
        violated = a.overlaps(b);
      }
      if (violated) continue;

      // Monotone power prunings on the placed prefix.
      const PowerProfile prefix = [&] {
        PowerProfileBuilder b;
        for (std::size_t i = 1; i <= k; ++i) {
          const TaskId u(static_cast<std::uint32_t>(i));
          b.add(Interval(starts[i], starts[i] + problem_.task(u).delay),
                problem_.task(u).power);
        }
        return b.build(problem_.backgroundPower());
      }();
      if (prefix.firstSpike(pmax)) continue;
      // The final profile dominates the prefix pointwise (tasks only add
      // power, and the final span only extends the background), so the
      // prefix's energy above pmin lower-bounds the final energy cost.
      if (haveBest && prefix.energyAbove(pmin) > bestCost) continue;

      self(self, k + 1);
      if (budgetTripped) return;
    }
  };
  dfs(dfs, 1);

  outcome_.provenOptimal = !budgetTripped;
  if (!haveBest) {
    out.status = budgetTripped ? SchedStatus::kBudgetExhausted
                               : SchedStatus::kPowerInfeasible;
    out.message = budgetTripped
                      ? "node budget exhausted before any valid schedule"
                      : "no valid schedule within the horizon";
    return out;
  }
  out.status = SchedStatus::kOk;
  out.schedule = Schedule(&problem_, bestStarts);
  return out;
}

}  // namespace paws
