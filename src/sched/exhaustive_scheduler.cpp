#include "sched/exhaustive_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "base/check.hpp"
#include "exec/jobs.hpp"
#include "guard/budget.hpp"
#include "exec/parallel_for.hpp"
#include "exec/pool.hpp"
#include "obs/incumbents.hpp"
#include "obs/metrics.hpp"
#include "power/profile.hpp"
#include "power/profile_engine.hpp"

namespace paws {

namespace {

/// Constraints indexed per task for O(deg) pairwise checks.
struct Pair {
  TaskId other;
  Duration sep;
  bool otherIsFrom;
  bool isMin;
};

std::vector<std::vector<Pair>> buildTouching(const Problem& problem) {
  std::vector<std::vector<Pair>> touching(problem.numVertices());
  for (const TimingConstraint& c : problem.constraints()) {
    const bool isMin = c.kind == TimingConstraint::Kind::kMinSeparation;
    touching[c.from.index()].push_back(Pair{c.to, c.separation, false, isMin});
    touching[c.to.index()].push_back(Pair{c.from, c.separation, true, isMin});
  }
  return touching;
}

/// State shared by every worker of one search. The cost bound only ever
/// holds costs of *achieved* valid leaves, so it is always >= the optimal
/// cost and the strictly-greater prefix pruning can never cut a leaf tying
/// the final optimum on cost — parallel pruning removes only subtrees the
/// serial reduction would discard anyway, which is what makes the parallel
/// result bit-identical.
/// Why the whole search stopped early; the first worker to trip wins (CAS
/// from kStopNone) so concurrent trips can't overwrite each other's reason.
enum StopCode : std::uint8_t {
  kStopNone = 0,
  kStopNodeBudget = 1,
  kStopDeadline = 2,
  kStopCancelled = 3,
};

struct SearchShared {
  std::atomic<std::int64_t> bestCostMwt{
      std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::uint64_t> nodesExplored{0};
  std::atomic<std::uint8_t> stop{kStopNone};
  std::uint64_t maxNodes = 0;
  /// Anytime-curve sink (borrowed, may be null). Recorded only on a
  /// successful CAS-min, i.e. when a worker genuinely lowered the global
  /// bound; the log's own monotonicity filter absorbs publication races.
  obs::IncumbentLog* incumbents = nullptr;
  // Aggregated per-worker profile effort (flushed once per worker, not per
  // node — the dfs hot loop stays atomic-free).
  std::atomic<std::uint64_t> profileUpdates{0};
  std::atomic<std::uint64_t> profileRebuilds{0};

  [[nodiscard]] bool stopped() const {
    return stop.load(std::memory_order_relaxed) != kStopNone;
  }
  /// Latch a stop reason; only the first publisher's reason sticks.
  void publishStop(StopCode code) {
    std::uint8_t expected = kStopNone;
    stop.compare_exchange_strong(expected, code, std::memory_order_relaxed);
  }
};

/// A worker's chunk-local winner: the first leaf in its DFS order that
/// achieves the local lexicographic minimum of (energy cost, finish).
struct LocalBest {
  std::vector<Time> starts;
  Energy cost;
  Time finish;
  bool have = false;
};

/// Folds `lb` into `acc` with the same strict-improvement rule the serial
/// DFS uses, so applying it in chunk order (= task-1 start-time order = the
/// serial DFS's outermost loop order) reproduces the serial winner.
void mergeBest(LocalBest& acc, LocalBest&& lb) {
  if (!lb.have) return;
  if (!acc.have || lb.cost < acc.cost ||
      (lb.cost == acc.cost && lb.finish < acc.finish)) {
    acc = std::move(lb);
  }
}

/// One DFS worker over a contiguous range of task-1 start times. Parallel
/// callers hand each worker its own Problem clone; nothing here mutates
/// state shared with other workers except the atomics in SearchShared.
class Worker {
 public:
  Worker(const Problem& problem, const std::vector<std::vector<Pair>>& touching,
         Time horizon, SearchShared& shared, bool incremental,
         const guard::RunBudget& budget)
      : problem_(problem),
        touching_(touching),
        horizon_(horizon),
        shared_(shared),
        pmin_(problem.minPower()),
        pmax_(problem.maxPower()),
        incremental_(incremental),
        // Each worker strides its own clock reads: one steady_clock::now()
        // per 1024 expanded nodes keeps deadline latency ~microseconds at
        // search speed while the clean-path overhead stays a branch.
        guard_(budget, 1024),
        engine_(problem.backgroundPower(), problem.minPower(),
                problem.maxPower()),
        starts_(problem.numVertices(), Time::zero()) {}

  ~Worker() {
    // Flush this worker's profile effort into the shared aggregates.
    shared_.profileUpdates.fetch_add(engine_.incrementalUpdates() +
                                         legacyUpdates_,
                                     std::memory_order_relaxed);
    shared_.profileRebuilds.fetch_add(engine_.rebuilds() + legacyRebuilds_,
                                      std::memory_order_relaxed);
  }

  /// Explores task 1's start over [t1Lo, t1Hi] (inclusive, additionally
  /// clamped by the horizon), deeper tasks over the full horizon.
  void search(Time t1Lo, Time t1Hi) {
    t1Lo_ = t1Lo;
    t1Hi_ = t1Hi;
    dfs(1);
  }

  LocalBest takeBest() { return std::move(best_); }

 private:
  void dfs(std::size_t k);
  void leaf();

  const Problem& problem_;
  const std::vector<std::vector<Pair>>& touching_;
  const Time horizon_;
  SearchShared& shared_;
  const Watts pmin_;
  const Watts pmax_;
  const bool incremental_;
  guard::RunGuard guard_;
  power::ProfileEngine engine_;  // placed-prefix profile (incremental mode)
  std::uint64_t legacyUpdates_ = 0;
  std::uint64_t legacyRebuilds_ = 0;
  Time t1Lo_;
  Time t1Hi_;
  std::vector<Time> starts_;
  LocalBest best_;
};

void Worker::dfs(std::size_t k) {
  if (shared_.stopped()) return;
  const std::size_t n = problem_.numVertices();
  if (k == n) {
    leaf();
    return;
  }
  const TaskId v(static_cast<std::uint32_t>(k));
  const Task& task = problem_.task(v);
  Time lo = Time::zero();
  Time hi = horizon_ - task.delay;  // inclusive upper bound
  if (k == 1) {
    lo = std::max(lo, t1Lo_);
    hi = std::min(hi, t1Hi_);
  }
  for (Time t = lo; t <= hi; t += Duration(1)) {
    if (shared_.nodesExplored.fetch_add(1, std::memory_order_relaxed) + 1 >
        shared_.maxNodes) {
      shared_.publishStop(kStopNodeBudget);
      return;
    }
    if (guard_.poll() != guard::StopReason::kNone) {
      shared_.publishStop(guard_.reason() == guard::StopReason::kCancelled
                              ? kStopCancelled
                              : kStopDeadline);
      return;
    }
    starts_[k] = t;

    // Pairwise checks against placed tasks (anchor is placed at 0).
    bool violated = false;
    for (const Pair& pr : touching_[k]) {
      if (pr.other.index() >= k && pr.other != kAnchorTask) continue;
      const Time o = starts_[pr.other.index()];
      const Duration gap = pr.otherIsFrom ? (t - o) : (o - t);
      if (pr.isMin ? gap < pr.sep : gap > pr.sep) {
        violated = true;
        break;
      }
    }
    if (violated) continue;
    for (std::size_t j = 1; j < k && !violated; ++j) {
      const TaskId u(static_cast<std::uint32_t>(j));
      if (problem_.task(u).resource != task.resource) continue;
      const Interval a(t, t + task.delay);
      const Interval b(starts_[j], starts_[j] + problem_.task(u).delay);
      violated = a.overlaps(b);
    }
    if (violated) continue;

    // Monotone power prunings on the placed prefix. Incremental mode keeps
    // the prefix profile alive in the engine — one addTask per placement,
    // one removeTask per backtrack, O(log k + touched segments) each — and
    // reads both pruning quantities from cached aggregates.
    if (incremental_) {
      engine_.addTask(v, Interval(t, t + task.delay), task.power);
      const bool pruned =
          engine_.firstSpike().has_value() ||
          engine_.energyAbove().milliwattTicks() >
              shared_.bestCostMwt.load(std::memory_order_relaxed);
      if (pruned) {
        engine_.removeTask(v);
        continue;
      }
      dfs(k + 1);
      engine_.removeTask(v);
      if (shared_.stopped()) return;
      continue;
    }

    const PowerProfile prefix = [&] {
      PowerProfileBuilder b;
      for (std::size_t i = 1; i <= k; ++i) {
        const TaskId u(static_cast<std::uint32_t>(i));
        b.add(Interval(starts_[i], starts_[i] + problem_.task(u).delay),
              problem_.task(u).power);
      }
      return b.build(problem_.backgroundPower());
    }();
    ++legacyRebuilds_;
    if (prefix.firstSpike(pmax_)) continue;
    // The final profile dominates the prefix pointwise (tasks only add
    // power, and the final span only extends the background), so the
    // prefix's energy above pmin lower-bounds the final energy cost.
    if (prefix.energyAbove(pmin_).milliwattTicks() >
        shared_.bestCostMwt.load(std::memory_order_relaxed)) {
      continue;
    }

    dfs(k + 1);
    if (shared_.stopped()) return;
  }
}

void Worker::leaf() {
  Energy cost;
  Time finish;
  if (incremental_) {
    // The engine holds every task's contribution here (k == n), i.e.
    // exactly profileOf(problem_, starts_) — all leaf quantities are
    // cached aggregates.
    if (engine_.firstSpike().has_value()) return;
    cost = engine_.energyAbove();
    finish = engine_.finish();
  } else {
    const PowerProfile profile = profileOf(problem_, starts_);
    ++legacyRebuilds_;
    if (profile.firstSpike(pmax_)) return;
    cost = profile.energyAbove(pmin_);
    finish = finishOf(problem_, starts_);
  }
  if (!best_.have || cost < best_.cost ||
      (cost == best_.cost && finish < best_.finish)) {
    best_.starts = starts_;
    best_.cost = cost;
    best_.finish = finish;
    best_.have = true;
    // Publish to the shared pruning bound (CAS-min). Relaxed is enough:
    // the bound is a pruning accelerator, and a stale read merely prunes
    // less; every stored value is a genuinely achieved leaf cost.
    std::int64_t cur = shared_.bestCostMwt.load(std::memory_order_relaxed);
    while (cost.milliwattTicks() < cur) {
      if (shared_.bestCostMwt.compare_exchange_weak(
              cur, cost.milliwattTicks(), std::memory_order_relaxed)) {
        if (shared_.incumbents != nullptr) {
          shared_.incumbents->record(cost.milliwattTicks());
        }
        break;
      }
    }
  }
}

}  // namespace

ExhaustiveScheduler::ExhaustiveScheduler(const Problem& problem,
                                         ExhaustiveOptions options)
    : problem_(problem), options_(options) {}

ScheduleResult ExhaustiveScheduler::schedule() {
  ScheduleResult out;
  outcome_ = {};
  const std::size_t n = problem_.numVertices();

  // Horizon default: serial span (sum of delays) plus the largest declared
  // separation — any schedule worth considering for a small instance fits.
  Time horizon;
  if (options_.horizon) {
    horizon = *options_.horizon;
  } else {
    Duration total = Duration::zero();
    for (TaskId v : problem_.taskIds()) total += problem_.task(v).delay;
    Duration maxSep = Duration::zero();
    for (const TimingConstraint& c : problem_.constraints()) {
      maxSep = std::max(maxSep, c.separation);
    }
    horizon = Time::zero() + total + maxSep;
  }

  const std::vector<std::vector<Pair>> touching = buildTouching(problem_);
  SearchShared shared;
  shared.maxNodes = options_.maxNodes;
  shared.incumbents = options_.obs.incumbents;

  // Pin the relative timeout to one absolute deadline here, so every
  // worker (and any caller-nested stage) races the same clock.
  const guard::RunBudget budget = options_.budget.resolved();

  // Number of candidate start times for task 1 — the axis the parallel
  // split partitions.
  std::int64_t numT1 = 0;
  if (n >= 2) {
    numT1 = horizon.ticks() - problem_.task(TaskId(1)).delay.ticks() + 1;
  }

  const std::size_t jobs = exec::resolveJobs(options_.jobs);
  LocalBest best;
  if (jobs <= 1 || numT1 < 2) {
    // Serial: one worker over the whole range, on the calling thread.
    Worker w(problem_, touching, horizon, shared, options_.incrementalProfile,
             budget);
    w.search(Time::zero(), horizon);
    best = w.takeBest();
  } else {
    // More chunks than workers so an uneven subtree doesn't serialize the
    // tail; the chunk boundaries depend only on (numT1, jobs).
    const std::size_t numChunks = static_cast<std::size_t>(
        std::min<std::int64_t>(numT1, static_cast<std::int64_t>(jobs) * 4));
    exec::Pool pool(jobs);
    std::vector<LocalBest> results = exec::parallelMap(
        pool, numChunks, [&](std::size_t i) -> LocalBest {
          const std::int64_t lo =
              numT1 * static_cast<std::int64_t>(i) /
              static_cast<std::int64_t>(numChunks);
          const std::int64_t hi =
              numT1 * static_cast<std::int64_t>(i + 1) /
                  static_cast<std::int64_t>(numChunks) -
              1;
          const Problem clone = problem_;  // worker-private scratch
          Worker w(clone, touching, horizon, shared,
                   options_.incrementalProfile, budget);
          w.search(Time::zero() + Duration(lo), Time::zero() + Duration(hi));
          return w.takeBest();
        });
    // Ordered reduction: chunk index order is task-1 start-time order, the
    // serial DFS's outermost loop — first winner on ties, like the DFS.
    for (LocalBest& lb : results) mergeBest(best, std::move(lb));
    if (options_.obs.metrics != nullptr) {
      pool.exportMetrics(*options_.obs.metrics);
    }
  }

  outcome_.nodesExplored =
      shared.nodesExplored.load(std::memory_order_relaxed);
  const auto stop =
      static_cast<StopCode>(shared.stop.load(std::memory_order_relaxed));
  outcome_.provenOptimal = stop == kStopNone;
  outcome_.stopReason = stop == kStopDeadline    ? guard::StopReason::kDeadline
                        : stop == kStopCancelled ? guard::StopReason::kCancelled
                                                 : guard::StopReason::kNone;
  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics->add("exhaustive.nodes", outcome_.nodesExplored);
    options_.obs.metrics->add(
        "profile.incremental_updates",
        shared.profileUpdates.load(std::memory_order_relaxed));
    options_.obs.metrics->add(
        "profile.rebuilds",
        shared.profileRebuilds.load(std::memory_order_relaxed));
    if (stop == kStopDeadline) {
      options_.obs.metrics->add("guard.deadline_trips", 1);
    } else if (stop == kStopCancelled) {
      options_.obs.metrics->add("guard.cancels", 1);
    }
  }

  if (outcome_.stopReason != guard::StopReason::kNone) {
    // Anytime result: the best incumbent found before the trip, flagged so
    // callers know it is not proven optimal.
    out.status = SchedStatus::kDeadlineExceeded;
    out.message = stop == kStopCancelled
                      ? "search cancelled"
                      : "wall-clock deadline exceeded";
    if (best.have) {
      out.schedule = Schedule(&problem_, best.starts);
      out.message += "; returning best incumbent (not proven optimal)";
      if (options_.obs.metrics != nullptr) {
        options_.obs.metrics->add("guard.incumbent_returned", 1);
      }
    } else {
      out.message += " before any valid schedule was found";
    }
    return out;
  }

  if (!best.have) {
    out.status = stop == kStopNodeBudget ? SchedStatus::kBudgetExhausted
                                         : SchedStatus::kPowerInfeasible;
    out.message = stop == kStopNodeBudget
                      ? "node budget exhausted before any valid schedule"
                      : "no valid schedule within the horizon";
    return out;
  }
  out.status = SchedStatus::kOk;
  out.schedule = Schedule(&problem_, best.starts);
  return out;
}

}  // namespace paws
