#include "sched/whatif.hpp"

#include "base/check.hpp"

namespace paws {

ScheduleDiff diffSchedules(const Schedule& before, const Schedule& after) {
  PAWS_CHECK_MSG(&before.problem() == &after.problem(),
                 "diff requires schedules of the same problem");
  const Problem& p = before.problem();
  ScheduleDiff diff;
  for (TaskId v : p.taskIds()) {
    if (before.start(v) != after.start(v)) {
      diff.moved.push_back(TaskMove{v, before.start(v), after.start(v)});
    }
  }
  diff.finishDelta = after.finish() - before.finish();
  diff.energyCostDelta =
      after.energyCost(p.minPower()) - before.energyCost(p.minPower());
  diff.utilizationDelta =
      after.utilization(p.minPower()) - before.utilization(p.minPower());
  return diff;
}

void WhatIfSession::lock(TaskId task, Time start) {
  PAWS_CHECK_MSG(task.isValid() && task != kAnchorTask &&
                     task.index() < problem_->numVertices(),
                 "cannot lock " << task);
  PAWS_CHECK_MSG(start >= Time::zero(), "locks must be at/after time 0");
  locks_[task] = start;
}

void WhatIfSession::unlock(TaskId task) { locks_.erase(task); }

void WhatIfSession::clearLocks() { locks_.clear(); }

std::optional<Time> WhatIfSession::lockOf(TaskId task) const {
  const auto it = locks_.find(task);
  if (it == locks_.end()) return std::nullopt;
  return it->second;
}

ScheduleResult WhatIfSession::reschedule(
    const PowerAwareOptions& options) const {
  // Clone the problem and add the locks as pin constraints; ids are
  // assigned in insertion order so they coincide with the original's.
  Problem pinned(*problem_);
  for (const auto& [task, start] : locks_) {
    pinned.pin(task, start);
  }
  PowerAwareScheduler scheduler(pinned, options);
  ScheduleResult result = scheduler.schedule();
  if (result.ok()) {
    // Rebind onto the original problem: same tasks, same limits — only the
    // solver saw the pins.
    result.schedule = Schedule(problem_, result.schedule->starts());
  }
  return result;
}

}  // namespace paws
