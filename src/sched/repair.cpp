#include "sched/repair.hpp"

#include "base/check.hpp"

namespace paws {

ScheduleResult repairSchedule(const RepairInput& input,
                              const PowerAwareOptions& options) {
  PAWS_CHECK(input.updated != nullptr && input.current != nullptr);
  const Problem& updated = *input.updated;
  const Schedule& current = *input.current;
  PAWS_CHECK_MSG(updated.numVertices() == current.problem().numVertices(),
                 "updated problem must carry the same task set");

  // Amend a copy: freeze the past, release the future.
  Problem amended(updated);
  for (TaskId v : updated.taskIds()) {
    if (current.start(v) < input.now) {
      amended.pin(v, current.start(v));
    } else {
      amended.release(v, input.now);
    }
  }

  // Frozen history may already violate a newly tightened budget; such
  // spikes cannot be repaired and must be tolerated, not chased.
  PowerAwareOptions repairOptions = options;
  repairOptions.minPower.maxPower.ignoreSpikesBeforeTick =
      input.now.ticks();

  PowerAwareScheduler scheduler(amended, repairOptions);
  ScheduleResult result = scheduler.schedule();
  if (result.ok()) {
    // Rebind to the caller's updated problem (same ids; the pins/releases
    // only constrained the solver).
    result.schedule = Schedule(input.updated, result.schedule->starts());
    // Postcondition: history untouched.
    for (TaskId v : updated.taskIds()) {
      if (current.start(v) < input.now) {
        PAWS_CHECK(result.schedule->start(v) == current.start(v));
      }
    }
  }
  return result;
}

}  // namespace paws
