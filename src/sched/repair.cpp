#include "sched/repair.hpp"

#include <sstream>

#include "base/check.hpp"

namespace paws {

namespace {

ScheduleResult invalidInput(std::string message) {
  ScheduleResult result;
  result.status = SchedStatus::kInvalidInput;
  result.message = std::move(message);
  return result;
}

}  // namespace

ScheduleResult repairSchedule(const RepairInput& input,
                              const PowerAwareOptions& options) {
  // Repair runs mid-mission on caller-assembled inputs; a malformed request
  // must come back as a structured failure, not a process abort.
  if (input.updated == nullptr) {
    return invalidInput("repair: updated problem is null");
  }
  if (input.current == nullptr) {
    return invalidInput("repair: current schedule is null");
  }
  const Problem& updated = *input.updated;
  const Schedule& current = *input.current;
  if (updated.numVertices() != current.problem().numVertices()) {
    std::ostringstream os;
    os << "repair: updated problem has " << updated.numVertices() - 1
       << " task(s) but the schedule's problem has "
       << current.problem().numVertices() - 1;
    return invalidInput(os.str());
  }
  for (TaskId v : updated.taskIds()) {
    if (updated.task(v).name != current.problem().task(v).name) {
      std::ostringstream os;
      os << "repair: task id " << v << " is '" << updated.task(v).name
         << "' in the updated problem but '" << current.problem().task(v).name
         << "' in the schedule's problem";
      return invalidInput(os.str());
    }
  }

  // Amend a copy: freeze the past, release the future.
  Problem amended(updated);
  for (TaskId v : updated.taskIds()) {
    if (current.start(v) < input.now) {
      amended.pin(v, current.start(v));
    } else {
      amended.release(v, input.now);
    }
  }

  // Frozen history may already violate a newly tightened budget; such
  // spikes cannot be repaired and must be tolerated, not chased.
  PowerAwareOptions repairOptions = options;
  repairOptions.minPower.maxPower.ignoreSpikesBeforeTick =
      input.now.ticks();

  PowerAwareScheduler scheduler(amended, repairOptions);
  ScheduleResult result = scheduler.schedule();
  if (result.ok()) {
    // Rebind to the caller's updated problem (same ids; the pins/releases
    // only constrained the solver).
    result.schedule = Schedule(input.updated, result.schedule->starts());
    // Postcondition: history untouched.
    for (TaskId v : updated.taskIds()) {
      if (current.start(v) < input.now) {
        PAWS_CHECK(result.schedule->start(v) == current.start(v));
      }
    }
  }
  return result;
}

}  // namespace paws
