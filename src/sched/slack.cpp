#include "sched/slack.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace paws {

Duration slackOf(const ConstraintGraph& graph, const std::vector<Time>& sigma,
                 TaskId v) {
  PAWS_CHECK(v.index() < sigma.size());
  Duration slack = Duration::max();
  const Time sv = sigma[v.index()];
  for (const AdjEntry& ae : graph.outEdges(v)) {
    // sigma(u) - sigma(v) >= w must keep holding as sigma(v) grows:
    // sigma(v) may rise to sigma(u) - w.
    const Duration room = (sigma[ae.other.index()] - ae.weight) - sv;
    slack = std::min(slack, room);
  }
  return slack;
}

std::vector<Duration> computeSlacks(const ConstraintGraph& graph,
                                    const std::vector<Time>& sigma) {
  PAWS_CHECK(sigma.size() == graph.numVertices());
  std::vector<Duration> slacks(sigma.size(), Duration::max());
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    slacks[i] = slackOf(graph, sigma, TaskId(static_cast<std::uint32_t>(i)));
  }
  return slacks;
}

}  // namespace paws
