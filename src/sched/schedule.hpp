// A schedule sigma: one start time per task (Section 4.1).
//
// A Schedule is immutable value data bound to its Problem; all power
// properties (profile, energy cost, utilization) derive from it on demand.
// Schedulers manipulate raw start-time vectors internally and wrap the final
// assignment in a Schedule.
#pragma once

#include <vector>

#include "base/ids.hpp"
#include "base/interval.hpp"
#include "base/time.hpp"
#include "base/units.hpp"
#include "model/problem.hpp"
#include "power/profile.hpp"

namespace paws {

class Schedule {
 public:
  /// `starts` is indexed by graph vertex (starts[0] = anchor, must be 0).
  Schedule(const Problem* problem, std::vector<Time> starts);

  [[nodiscard]] const Problem& problem() const { return *problem_; }

  [[nodiscard]] Time start(TaskId v) const;
  [[nodiscard]] Time end(TaskId v) const;
  /// Activity window [start, start + d(v)).
  [[nodiscard]] Interval interval(TaskId v) const;

  /// Finish time tau: when all tasks have completed.
  [[nodiscard]] Time finish() const { return finish_; }

  [[nodiscard]] bool isActiveAt(TaskId v, Time t) const {
    return interval(v).contains(t);
  }

  /// All real tasks active at time t, in id order.
  [[nodiscard]] std::vector<TaskId> activeAt(Time t) const;

  /// System power profile: background + all task contributions over
  /// [0, finish).
  [[nodiscard]] const PowerProfile& powerProfile() const;

  /// Energy cost Ec_sigma(pmin) including background power.
  [[nodiscard]] Energy energyCost(Watts pmin) const {
    return powerProfile().energyAbove(pmin);
  }
  /// Min-power utilization rho_sigma(pmin).
  [[nodiscard]] double utilization(Watts pmin) const {
    return powerProfile().utilization(pmin);
  }

  /// Raw start vector (vertex-indexed), for schedulers and serializers.
  [[nodiscard]] const std::vector<Time>& starts() const { return starts_; }

 private:
  const Problem* problem_;
  std::vector<Time> starts_;
  Time finish_;
  mutable std::optional<PowerProfile> profile_;  // computed lazily
};

/// Builds the power profile for an arbitrary start assignment without
/// constructing a Schedule (schedulers' inner loops).
PowerProfile profileOf(const Problem& problem, const std::vector<Time>& starts);

/// Finish time of a raw start assignment.
Time finishOf(const Problem& problem, const std::vector<Time>& starts);

}  // namespace paws
