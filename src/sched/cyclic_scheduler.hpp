// Steady-state scheduling of periodic workloads.
//
// The rover's mission is periodic — the same 2-step iteration repeats for
// hours — yet the paper (and our pipeline) schedules a finite unroll and
// eyeballs the repeating part (Fig. 9's "the second iteration can be
// repeated with less energy cost"). CyclicScheduler turns that into a
// constructed, verified periodic schedule:
//
//   1. the caller provides a problem FACTORY that builds a K-iteration
//      unroll and reports each iteration's task handles;
//   2. we schedule a 4-deep unroll with the full pipeline and extract the
//      *kernel*: iteration 2's task offsets (interior, so it is both
//      pre-heated by its predecessor and pre-heating its successor);
//   3. we search for the minimal period P at which repeating the kernel
//      verbatim is valid, by pinning a two-iteration expansion at offsets
//      and offsets+P and checking every timing constraint, resource
//      exclusivity, and the Pmax budget of the overlapped profile.
//
// The result is everything a runtime needs to loop the kernel forever:
// the period, the per-period energy cost (measured on the second window of
// the expansion, whose overlap pattern equals the looping regime), and the
// kernel's task offsets. Assumption, checked by construction for chained
// loop models: user constraints span at most adjacent iterations.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model/problem.hpp"
#include "sched/power_aware_scheduler.hpp"

namespace paws {

/// A periodic steady-state schedule: task start offsets within one period.
struct CyclicSchedule {
  Duration period;       ///< start-to-start distance between kernels
  Energy costPerPeriod;  ///< Ec(Pmin) per period in the looping regime
  /// Task offsets within the kernel, by name (names come from iteration 1
  /// of the factory's unroll, so they are stable across K), ascending.
  std::vector<std::pair<std::string, Time>> offsets;
};

struct CyclicResult {
  bool ok = false;
  /// True when a valid looping period was constructed and verified.
  bool steadyStateProven = false;
  std::string message;
  CyclicSchedule kernel;
  /// Cold-start cost: Ec of everything before the first kernel instance.
  Energy warmupCost;
  Duration warmupSpan;
};

class CyclicScheduler {
 public:
  /// `buildUnroll(k, &perIterationTaskIds)` must return a problem chaining
  /// k iterations and fill one TaskId vector per iteration (iteration
  /// order, same task count and per-name structure each iteration). It is
  /// invoked with k = 4 (kernel extraction) and k = 2 (period search).
  using UnrollFactory = std::function<Problem(
      int iterations, std::vector<std::vector<TaskId>>* perIteration)>;

  explicit CyclicScheduler(UnrollFactory factory,
                           PowerAwareOptions options = {});

  CyclicResult schedule();

 private:
  UnrollFactory factory_;
  PowerAwareOptions options_;
};

}  // namespace paws
