// MinPowerScheduler — Fig. 6 of the paper.
//
// Given a valid (time-valid and Pmax-respecting) schedule, improves the
// soft min-power objective: free power below Pmin that is not consumed is
// wasted, so the scheduler reorders tasks *within their slacks* to fill
// power gaps, raising the min-power utilization rho and thereby lowering
// the energy cost Ec drawn from the costly source.
//
// One pass scans the gaps of the current profile in a heuristic order
// (forward / backward / random over time); for each gap starting at t it
// tries to delay tasks that finished before t just enough to be active at
// t, choosing the new slot with a heuristic (start at the gap, finish at
// the gap's end, or a random slot). A move is kept only when the new
// schedule is still valid and strictly increases rho — otherwise the added
// delay edge is rolled back (the paper's "undo added edges in step B").
// Passes repeat, rotating the heuristics between them (the paper "scans the
// schedule multiple times while altering some of the heuristics during each
// scan"), until a pass finds no improvement or the pass budget is hit.
//
// Min power is a soft constraint: the scheduler may leave gaps behind; it
// never worsens rho, never violates timing or Pmax, and never touches the
// schedule when rho is already 1.
#pragma once

#include "model/problem.hpp"
#include "sched/max_power_scheduler.hpp"
#include "sched/options.hpp"
#include "sched/result.hpp"

namespace paws {

class MinPowerScheduler {
 public:
  explicit MinPowerScheduler(const Problem& problem,
                             MinPowerOptions options = {});

  /// Full pipeline: timing -> max power -> min power.
  ScheduleResult schedule();

  /// Improvement stage only: polishes an existing valid schedule whose
  /// decorated graph (serialization + decisions) is `graph`. Returns the
  /// improved result; `graph` accumulates the accepted delay edges.
  ScheduleResult improve(ConstraintGraph& graph, const Schedule& valid,
                         SchedulerStats stats = {});

 private:
  const Problem& problem_;
  MinPowerOptions options_;
};

}  // namespace paws
