// PowerAwareScheduler — the complete three-stage pipeline (Section 5).
//
// Runs timing scheduling, then max-power spike elimination, then min-power
// gap filling, and optionally repeats the whole pipeline over several
// seeded trials with perturbed heuristics ("in practice, we scan the
// schedule multiple times while altering some of the heuristics during
// each scan and take the best results"). The best schedule is the one with
// the lowest energy cost Ec(Pmin); ties break on finish time, then on
// utilization.
#pragma once

#include <optional>

#include "model/problem.hpp"
#include "sched/battery_refine.hpp"
#include "sched/options.hpp"
#include "sched/result.hpp"

namespace paws {

struct PowerAwareOptions {
  MinPowerOptions minPower;
  /// Rate-capacity battery refinement (sched/battery_refine.hpp), applied
  /// to the winning trial's schedule. Off by default: without it — or with
  /// a linear model — the pipeline's output is byte-identical to previous
  /// releases.
  std::optional<BatteryRefineOptions> batteryRefine;
  /// Pipeline trials; trial k reseeds the heuristics with seed base+k and
  /// alternates the min-power scan order.
  std::uint32_t trials = 4;
  /// Observability hooks, propagated into every trial's nested stages.
  /// When a MetricsRegistry is attached the final stats are exported
  /// under their "search.*" names plus pipeline.trials{,_ok} counters.
  obs::ObsContext obs;
  /// One deadline for the whole multi-trial run: trials share the absolute
  /// time point, remaining trials are skipped once it trips, and the best
  /// anytime result seen so far is returned (kDeadlineExceeded unless some
  /// trial completed cleanly first).
  guard::RunBudget budget;
};

class PowerAwareScheduler {
 public:
  explicit PowerAwareScheduler(const Problem& problem,
                               PowerAwareOptions options = {});

  ScheduleResult schedule();

 private:
  const Problem& problem_;
  PowerAwareOptions options_;
};

}  // namespace paws
