#include "sched/result.hpp"

#include "obs/metrics.hpp"

namespace paws {

const char* toString(SchedStatus status) {
  switch (status) {
    case SchedStatus::kOk:
      return "ok";
    case SchedStatus::kTimingInfeasible:
      return "timing-infeasible";
    case SchedStatus::kPowerInfeasible:
      return "power-infeasible";
    case SchedStatus::kBudgetExhausted:
      return "budget-exhausted";
    case SchedStatus::kInvalidInput:
      return "invalid-input";
    case SchedStatus::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "?";
}

std::optional<SchedStatus> schedStatusFromString(std::string_view text) {
  for (const SchedStatus s :
       {SchedStatus::kOk, SchedStatus::kTimingInfeasible,
        SchedStatus::kPowerInfeasible, SchedStatus::kBudgetExhausted,
        SchedStatus::kInvalidInput, SchedStatus::kDeadlineExceeded}) {
    if (text == toString(s)) return s;
  }
  return std::nullopt;
}

void exportStats(const SchedulerStats& stats, obs::MetricsRegistry& registry) {
  registry.add("search.longest_path_runs", stats.longestPathRuns);
  registry.add("search.backtracks", stats.backtracks);
  registry.add("search.delays", stats.delays);
  registry.add("search.locks", stats.locks);
  registry.add("search.recursions", stats.recursions);
  registry.add("search.scans", stats.scans);
  registry.add("search.improvements", stats.improvements);
}

SchedulerStats statsFromMetrics(const obs::MetricsRegistry& registry) {
  SchedulerStats stats;
  stats.longestPathRuns = registry.counter("search.longest_path_runs");
  stats.backtracks = registry.counter("search.backtracks");
  stats.delays = registry.counter("search.delays");
  stats.locks = registry.counter("search.locks");
  stats.recursions = registry.counter("search.recursions");
  stats.scans = registry.counter("search.scans");
  stats.improvements = registry.counter("search.improvements");
  return stats;
}

}  // namespace paws
