#include "sched/result.hpp"

namespace paws {

const char* toString(SchedStatus status) {
  switch (status) {
    case SchedStatus::kOk:
      return "ok";
    case SchedStatus::kTimingInfeasible:
      return "timing-infeasible";
    case SchedStatus::kPowerInfeasible:
      return "power-infeasible";
    case SchedStatus::kBudgetExhausted:
      return "budget-exhausted";
  }
  return "?";
}

}  // namespace paws
