#include "sched/power_aware_scheduler.hpp"

#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "sched/min_power_scheduler.hpp"

namespace paws {

namespace {

/// Lexicographic quality: lower energy cost, then earlier finish, then
/// higher utilization.
bool betterThan(const Schedule& a, const Schedule& b, Watts pmin) {
  const Energy ecA = a.energyCost(pmin);
  const Energy ecB = b.energyCost(pmin);
  if (ecA != ecB) return ecA < ecB;
  if (a.finish() != b.finish()) return a.finish() < b.finish();
  return a.utilization(pmin) > b.utilization(pmin);
}

}  // namespace

PowerAwareScheduler::PowerAwareScheduler(const Problem& problem,
                                         PowerAwareOptions options)
    : problem_(problem), options_(options) {}

ScheduleResult PowerAwareScheduler::schedule() {
  const Watts pmin = problem_.minPower();
  obs::PhaseTimer phase(options_.obs, "pipeline");
  ScheduleResult best;
  bool haveBest = false;
  SchedulerStats total;
  std::uint32_t trialsOk = 0;

  // One absolute deadline for every trial; once it trips there is no point
  // starting the next trial (it would trip at its first poll anyway).
  options_.budget = options_.budget.resolved();
  guard::RunGuard trialGuard(options_.budget, /*stride=*/1);

  const std::uint32_t trials = std::max<std::uint32_t>(options_.trials, 1);
  for (std::uint32_t k = 0; k < trials; ++k) {
    if (k > 0 && trialGuard.check() != guard::StopReason::kNone) break;
    MinPowerOptions opts = options_.minPower;
    opts.obs.inheritFrom(options_.obs);
    opts.budget.inheritFrom(options_.budget);
    opts.randomSeed += k;
    opts.maxPower.randomSeed += k;
    opts.maxPower.timing.randomSeed += k;
    // Alternate the first scan direction across trials so different partial
    // orders get explored even without randomness.
    if (k % 2 == 1) {
      opts.scanOrder = opts.scanOrder == ScanOrder::kForward
                           ? ScanOrder::kBackward
                           : ScanOrder::kForward;
    }
    if (k >= 2) opts.slotHeuristic = SlotHeuristic::kFinishAtGapEnd;

    MinPowerScheduler pipeline(problem_, opts);
    obs::PhaseTimer trialTimer(options_.obs, "trial", k);
    ScheduleResult r = pipeline.schedule();
    trialTimer.finish();
    total += r.stats;
    if (!r.ok()) {
      if (!haveBest) {
        // A deadline-tripped trial can still carry an anytime schedule;
        // keep the best of those unless some trial completes cleanly. A
        // schedule-less failure only provides diagnostics (last one wins,
        // as before the guard existed).
        const bool anytime = r.status == SchedStatus::kDeadlineExceeded &&
                             r.schedule.has_value();
        const bool bestAnytime = best.schedule.has_value();
        if (anytime) {
          if (!bestAnytime || betterThan(*r.schedule, *best.schedule, pmin)) {
            best = std::move(r);
          }
        } else if (!bestAnytime) {
          best = std::move(r);  // Remember the failure diagnostics.
        }
      }
      continue;
    }
    ++trialsOk;
    if (!haveBest || !best.ok() ||
        betterThan(*r.schedule, *best.schedule, pmin)) {
      best = std::move(r);
      haveBest = true;
    }
  }
  if (best.ok() && options_.batteryRefine.has_value()) {
    BatteryRefineOptions refineOpts = *options_.batteryRefine;
    refineOpts.obs.inheritFrom(options_.obs);
    best.schedule = batteryRefine(problem_, *best.schedule, refineOpts);
  }
  best.stats = total;
  if (options_.obs.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.obs.metrics;
    exportStats(total, m);
    m.add("pipeline.trials", trials);
    m.add("pipeline.trials_ok", trialsOk);
    m.set("pipeline.status", static_cast<double>(
                                 static_cast<std::uint8_t>(best.status)));
  }
  return best;
}

}  // namespace paws
