// MaxPowerScheduler — Fig. 4 of the paper.
//
// Applies the hard max-power budget Pmax to a time-valid schedule by
// eliminating *power spikes* (intervals with P(t) > Pmax). The sweep walks
// the profile in time order; at the first spike it delays simultaneous
// tasks, picking victims by the paper's slack heuristic:
//
//   (1) while some active task has enough slack to clear the spike, delay
//       the largest-slack task past it — the schedule stays time-valid, no
//       timing work is needed;
//   (2) when only insufficient-slack tasks remain, a victim is delayed
//       beyond its slack anyway ("reschedule"): the start times of the
//       untouched simultaneous tasks are locked, and the whole scheduler
//       re-runs recursively (TimingScheduler first) on the amended graph.
//       If the recursion fails the locks are undone and one more task is
//       delayed before recursing again.
//
// Delay distances are bounded by the victim's execution time (the paper's
// heuristic upper bound); since a task active at t satisfies
// t - sigma(v) < d(v), the minimal clearing delay t - sigma(v) + 1 always
// respects that bound. Deviation from the pseudocode, documented here: we
// re-derive the victim set and slacks after every accepted delay (a delay
// can push a third task into the spike instant), and we rely on the
// first-spike rescan instead of locking after case-(1) fixes; both make the
// heuristic strictly more robust and change no paper-reported result.
//
// The scheduler may fail on feasible instances (the paper notes it does not
// enumerate all partial orders); it never returns a schedule violating
// timing constraints or Pmax.
#pragma once

#include <optional>
#include <vector>

#include "graph/constraint_graph.hpp"
#include "model/problem.hpp"
#include "sched/options.hpp"
#include "sched/result.hpp"

namespace paws {

class MaxPowerScheduler {
 public:
  explicit MaxPowerScheduler(const Problem& problem,
                             MaxPowerOptions options = {});

  /// Result plus the decorated constraint graph (user constraints +
  /// serialization + delay/lock decisions) that produced it; MinPower
  /// scheduling continues on that graph.
  struct Detailed {
    ScheduleResult result;
    std::optional<ConstraintGraph> graph;
  };

  ScheduleResult schedule();
  Detailed scheduleDetailed();

 private:
  /// One delay/lock decision, replayed onto fresh graphs across recursions.
  struct Decision {
    TaskId task;
    Time at;
    bool lock;  // lock => also pin sigma(task) <= at
  };

  struct Attempt {
    ScheduleResult result;
    std::optional<ConstraintGraph> graph;
    std::vector<Time> starts;
  };

  Attempt attempt(std::uint32_t depth, SchedulerStats& stats);
  void applyDecision(ConstraintGraph& graph, const Decision& d) const;

  const Problem& problem_;
  MaxPowerOptions options_;
  std::vector<Decision> decisions_;
  std::uint64_t delaysLeft_ = 0;
  guard::RunGuard guard_{guard::RunBudget{}};
  std::uint32_t rngState_ = 1;
  // Profile effort accumulated across all recursive attempts (each attempt
  // owns a ProfileEngine; counters are flushed here as attempts unwind and
  // exported as profile.* metrics by scheduleDetailed).
  std::uint64_t profileRebuilds_ = 0;
  std::uint64_t profileUpdates_ = 0;
  std::uint64_t profileRestores_ = 0;
};

}  // namespace paws
