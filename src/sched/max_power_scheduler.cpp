#include "sched/max_power_scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "base/check.hpp"
#include "graph/longest_path.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "power/profile_engine.hpp"
#include "sched/slack.hpp"
#include "sched/timing_scheduler.hpp"

namespace paws {

namespace {

std::uint32_t nextRand(std::uint32_t& state) {
  std::uint32_t x = state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return state = x;
}

/// One O(V) stabbing scan over a raw assignment: the tasks active at t (in
/// increasing id order, like ProfileEngine::activeAt) and the instantaneous
/// power they draw. This is the legacy fallback behind
/// MaxPowerOptions::incrementalProfile == false — the hot path reads both
/// answers from the engine's active-interval index instead.
struct ActiveScan {
  std::vector<TaskId> tasks;
  Watts power;
};

ActiveScan scanActiveAt(const Problem& problem, const std::vector<Time>& starts,
                        Time t) {
  ActiveScan out;
  out.power = problem.backgroundPower();
  for (std::size_t i = 1; i < problem.numVertices(); ++i) {
    const TaskId v(static_cast<std::uint32_t>(i));
    const Task& task = problem.task(v);
    if (starts[i] <= t && t < starts[i] + task.delay) {
      out.tasks.push_back(v);
      out.power += task.power;
    }
  }
  return out;
}

}  // namespace

MaxPowerScheduler::MaxPowerScheduler(const Problem& problem,
                                     MaxPowerOptions options)
    : problem_(problem), options_(options) {}

ScheduleResult MaxPowerScheduler::schedule() {
  return scheduleDetailed().result;
}

MaxPowerScheduler::Detailed MaxPowerScheduler::scheduleDetailed() {
  decisions_.clear();
  delaysLeft_ = options_.maxDelays;
  rngState_ = options_.randomSeed == 0 ? 1 : options_.randomSeed;
  profileRebuilds_ = 0;
  profileUpdates_ = 0;
  profileRestores_ = 0;
  options_.timing.obs.inheritFrom(options_.obs);
  // Pin the deadline once; nested TimingScheduler runs race the same clock.
  options_.budget = options_.budget.resolved();
  options_.timing.budget.inheritFrom(options_.budget);
  guard_ = guard::RunGuard(options_.budget, /*stride=*/16);
  obs::PhaseTimer phase(options_.obs, "max-power");

  // Provably infeasible budgets (a single task, alone, over Pmax) fail
  // fast instead of burning the delay budget chasing a moving spike.
  for (TaskId v : problem_.taskIds()) {
    const Task& task = problem_.task(v);
    if (task.power + problem_.backgroundPower() > problem_.maxPower()) {
      Detailed out;
      out.result.status = SchedStatus::kPowerInfeasible;
      std::ostringstream os;
      os << "task '" << task.name << "' draws " << task.power
         << " + background " << problem_.backgroundPower()
         << " > budget " << problem_.maxPower();
      out.result.message = os.str();
      return out;
    }
  }

  SchedulerStats stats;
  Attempt a = attempt(0, stats);
  a.result.stats += stats;

  if (options_.obs.metrics != nullptr) {
    options_.obs.metrics->add("profile.rebuilds", profileRebuilds_);
    options_.obs.metrics->add("profile.incremental_updates", profileUpdates_);
    options_.obs.metrics->add("profile.restores", profileRestores_);
    if (a.result.status == SchedStatus::kDeadlineExceeded) {
      // The trip may have fired in a nested TimingScheduler's own guard;
      // re-checking ours recovers the reason (cancellation stays set and
      // deadlines do not un-expire).
      options_.obs.metrics->add(
          guard_.check() == guard::StopReason::kCancelled ? "guard.cancels"
                                                          : "guard.deadline_trips",
          1);
    }
  }

  Detailed out;
  out.result = std::move(a.result);
  out.graph = std::move(a.graph);
  return out;
}

void MaxPowerScheduler::applyDecision(ConstraintGraph& graph,
                                      const Decision& d) const {
  graph.addEdge(kAnchorTask, d.task, d.at - Time::zero(), EdgeKind::kDelay);
  if (d.lock) {
    graph.addEdge(d.task, kAnchorTask, -(d.at - Time::zero()),
                  EdgeKind::kLock);
  }
}

MaxPowerScheduler::Attempt MaxPowerScheduler::attempt(std::uint32_t depth,
                                                      SchedulerStats& stats) {
  Attempt a;
  if (depth > options_.maxRecursionDepth) {
    a.result.status = SchedStatus::kBudgetExhausted;
    a.result.message = "max-power recursion depth exhausted";
    return a;
  }
  ++stats.recursions;
  PAWS_TRACE_INSTANT(options_.obs.trace, obs::TraceEventKind::kRecursion,
                     obs::TraceEvent::kNoTask, /*at=*/0,
                     /*value=*/static_cast<std::int64_t>(decisions_.size()),
                     depth);

  // Fresh graph: user constraints plus every decision taken so far; the
  // timing scheduler then re-derives a serialization compatible with them.
  ConstraintGraph graph = problem_.buildGraph();
  for (const Decision& d : decisions_) applyDecision(graph, d);
  LongestPathEngine engine(graph);
  engine.setObs(options_.obs);
  TimingScheduler timing(problem_, options_.timing);
  TimingScheduler::Output tOut = timing.run(graph, engine, stats);
  if (!tOut.ok) {
    a.result.status = tOut.stopReason != guard::StopReason::kNone
                          ? SchedStatus::kDeadlineExceeded
                      : tOut.budgetExhausted ? SchedStatus::kBudgetExhausted
                                             : SchedStatus::kTimingInfeasible;
    a.result.message = tOut.message;
    return a;
  }
  std::vector<Time> starts = std::move(tOut.starts);

  const Watts pmax = problem_.maxPower();
  const Time spikeHorizon(options_.ignoreSpikesBeforeTick);
  const bool incremental = options_.incrementalProfile;

  // The attempt's live profile: seeded once from the timing-valid starts,
  // then kept in sync with moveTask deltas as victims are delayed and
  // accepted delay rounds propagate. Every query below (first spike, power
  // at the spike instant, simultaneous tasks) is O(log n) against it
  // instead of an O(V) scan or a full profileOf rebuild per round. All
  // rejection paths return from the attempt, so no checkpoint frames are
  // needed — the engine dies with the attempt. Counters flush to the
  // scheduler-wide profile.* totals on every exit path.
  power::ProfileEngine pe(problem_.backgroundPower(), problem_.minPower(),
                          pmax);
  if (incremental) pe.rebuild(problem_, starts);
  struct CounterFlush {
    MaxPowerScheduler& self;
    power::ProfileEngine& pe;
    ~CounterFlush() {
      self.profileRebuilds_ += pe.rebuilds();
      self.profileUpdates_ += pe.incrementalUpdates();
      self.profileRestores_ += pe.restores();
    }
  } flush{*this, pe};

  while (true) {
    // Coarse boundary: one clock read per spike round. The graph, engine
    // and decision list are all consistent here, so tripping returns a
    // cleanly rolled-back attempt (the recursion's rollback paths do the
    // rest on the way out).
    if (guard_.check() != guard::StopReason::kNone) {
      a.result.status = SchedStatus::kDeadlineExceeded;
      a.result.message = guard_.reason() == guard::StopReason::kCancelled
                             ? "search cancelled during spike elimination"
                             : "deadline exceeded during spike elimination";
      return a;
    }
    std::optional<Time> spikeAt;
    if (incremental) {
      spikeAt = pe.firstSpike(spikeHorizon);
    } else {
      const PowerProfile profile = profileOf(problem_, starts);
      ++profileRebuilds_;
      spikeAt = profile.firstSpike(pmax, spikeHorizon);
    }
    if (!spikeAt) {
      a.result.status = SchedStatus::kOk;
      a.result.schedule = Schedule(&problem_, starts);
      a.starts = std::move(starts);
      a.graph = std::move(graph);
      return a;
    }

    const Time t = *spikeAt;
    const std::size_t savedDecisions = decisions_.size();
    const ConstraintGraph::Checkpoint graphMark = graph.checkpoint();
    const LongestPathEngine::Checkpoint engineMark = engine.checkpoint();
    std::vector<bool> delayedThisRound(problem_.numVertices(), false);
    bool reschedule = false;

    // --- The paper's inner repeat loop: delay simultaneous tasks (largest
    // slack first) until the spike *instant* t is locally cleared. A task
    // delayed past t simply stops drawing power at t, so local accounting
    // needs no retiming; delays beyond the victim's slack flag the
    // reschedule case. ---
    const std::vector<Duration> slacks = computeSlacks(graph, starts);
    std::vector<Time> localStarts = starts;
    while (true) {
      if (guard_.poll() != guard::StopReason::kNone) {
        decisions_.resize(savedDecisions);
        graph.rollbackTo(graphMark);
        engine.restore(engineMark);
        a.result.status = SchedStatus::kDeadlineExceeded;
        a.result.message = guard_.reason() == guard::StopReason::kCancelled
                               ? "search cancelled during spike elimination"
                               : "deadline exceeded during spike elimination";
        return a;
      }
      std::vector<TaskId> active;
      if (incremental) {
        if (pe.valueAt(t) <= pmax) break;
        active = pe.activeAt(t);
      } else {
        ActiveScan scan = scanActiveAt(problem_, localStarts, t);
        if (scan.power <= pmax) break;
        active = std::move(scan.tasks);
      }
      std::vector<TaskId> victims;
      for (TaskId v : active) {
        if (!delayedThisRound[v.index()]) victims.push_back(v);
      }
      if (victims.empty()) {
        decisions_.resize(savedDecisions);
        graph.rollbackTo(graphMark);
        engine.restore(engineMark);
        a.result.status = SchedStatus::kPowerInfeasible;
        std::ostringstream os;
        os << "cannot reduce power below " << pmax << " at t=" << t;
        a.result.message = os.str();
        return a;
      }

      TaskId v;
      if (options_.victimOrder == VictimOrder::kRandom) {
        v = victims[nextRand(rngState_) % victims.size()];
      } else {
        v = *std::max_element(victims.begin(), victims.end(),
                              [&slacks](TaskId x, TaskId y) {
                                return slacks[x.index()] < slacks[y.index()];
                              });
      }

      // Delay distance (the paper's heuristic): at most the victim's
      // execution time, further bounded by its slack in case (1). A task
      // active at t satisfies t - sigma(v) < d(v), so the minimal clearing
      // delay t - sigma(v) + 1 never exceeds the execution-time bound.
      const Duration needed = (t - starts[v.index()]) + Duration(1);
      const Duration execBound = problem_.task(v).delay;
      Duration delta;
      if (slacks[v.index()] >= needed) {
        delta = std::min(slacks[v.index()], execBound);  // case (1)
      } else {
        delta = execBound;  // case (2): beyond slack, forces rescheduling
        reschedule = true;
      }

      if (delaysLeft_ == 0) {
        decisions_.resize(savedDecisions);
        graph.rollbackTo(graphMark);
        engine.restore(engineMark);
        a.result.status = SchedStatus::kBudgetExhausted;
        a.result.message = "max-power delay budget exhausted";
        return a;
      }
      --delaysLeft_;
      ++stats.delays;
      PAWS_TRACE_INSTANT(options_.obs.trace, obs::TraceEventKind::kDelay,
                         v.value(), t.ticks(), delta.ticks(), depth);

      const Decision d{v, starts[v.index()] + delta, /*lock=*/false};
      decisions_.push_back(d);
      delayedThisRound[v.index()] = true;
      applyDecision(graph, d);
      localStarts[v.index()] = d.at;
      if (incremental) pe.moveTask(v, d.at);
    }

    if (!reschedule) {
      // All delays stayed within their slacks; propagate them exactly.
      const LongestPathResult& lp = engine.compute(kAnchorTask);
      ++stats.longestPathRuns;
      if (lp.feasible) {
        engine.release(engineMark);  // delay edges are being kept
        if (incremental) {
          // Sync the profile to the propagated start times with deltas for
          // only the tasks the longest-path run actually moved.
          for (std::size_t i = 1; i < lp.dist.size(); ++i) {
            if (lp.dist[i] != localStarts[i]) {
              pe.moveTask(TaskId(static_cast<std::uint32_t>(i)), lp.dist[i]);
            }
          }
        }
        starts = lp.dist;
        continue;  // Spike at t cleared; rescan the profile.
      }
      // Combined within-slack delays can still propagate into a max
      // window via pushed successors; fall into the reschedule case.
      reschedule = true;
    }
    // This attempt's graph and engine see no further queries: every path
    // below recurses on a fresh graph or returns. Close the frame.
    engine.release(engineMark);

    // --- Case (2): reschedule. Lock the untouched simultaneous tasks at
    // their current (still time-valid) start times, then re-run the whole
    // scheduler on the amended graph; on failure undo the locks, delay one
    // more simultaneous task, and try again (Section 5.2). ---
    std::vector<TaskId> remaining;
    const std::vector<TaskId> stillActive =
        incremental ? pe.activeAt(t)
                    : scanActiveAt(problem_, localStarts, t).tasks;
    for (TaskId v : stillActive) {
      if (!delayedThisRound[v.index()]) remaining.push_back(v);
    }

    while (true) {
      const std::size_t lockMark = decisions_.size();
      for (TaskId u : remaining) {
        decisions_.push_back(Decision{u, starts[u.index()], /*lock=*/true});
        ++stats.locks;
        PAWS_TRACE_INSTANT(options_.obs.trace, obs::TraceEventKind::kLock,
                           u.value(), starts[u.index()].ticks(),
                           /*value=*/0, depth);
      }
      Attempt sub = attempt(depth + 1, stats);
      if (sub.result.ok()) return sub;
      decisions_.resize(lockMark);

      // Budget and deadline trips are both terminal: retrying with one more
      // victim can only burn more of whatever ran out.
      if (sub.result.status == SchedStatus::kBudgetExhausted ||
          sub.result.status == SchedStatus::kDeadlineExceeded) {
        decisions_.resize(savedDecisions);
        return sub;
      }
      if (remaining.empty()) {
        decisions_.resize(savedDecisions);
        a.result.status = SchedStatus::kPowerInfeasible;
        std::ostringstream os;
        os << "reschedule failed for spike at t=" << t;
        a.result.message = os.str();
        return a;
      }

      // Delay one more simultaneous task past the spike and recurse again.
      std::size_t pick = 0;
      if (options_.victimOrder == VictimOrder::kRandom) {
        pick = nextRand(rngState_) % remaining.size();
      }
      const TaskId v = remaining[pick];
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
      if (delaysLeft_ == 0) {
        decisions_.resize(savedDecisions);
        a.result.status = SchedStatus::kBudgetExhausted;
        a.result.message = "max-power delay budget exhausted";
        return a;
      }
      --delaysLeft_;
      ++stats.delays;
      PAWS_TRACE_INSTANT(options_.obs.trace, obs::TraceEventKind::kDelay,
                         v.value(), t.ticks(),
                         problem_.task(v).delay.ticks(), depth);
      decisions_.push_back(Decision{
          v, starts[v.index()] + problem_.task(v).delay, /*lock=*/false});
    }
  }
}

}  // namespace paws
