// What-if exploration — the headless version of the power-aware Gantt
// chart's interactive workflow (Section 4.3): "designers can manually
// intervene with the automated scheduling process by dragging and locking
// the bins to alternative time slots in the time view, while observing the
// results in the power view".
//
// A WhatIfSession holds a set of user locks (task pinned to a start time),
// re-runs the full three-stage pipeline under them, and reports a
// structured diff against any reference schedule, so a designer (or a
// test) can see exactly what a manual intervention bought or cost.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "model/problem.hpp"
#include "sched/power_aware_scheduler.hpp"
#include "sched/result.hpp"

namespace paws {

/// One task whose start differs between two schedules.
struct TaskMove {
  TaskId task;
  Time before;
  Time after;
};

/// Structured comparison of two schedules of the same problem.
struct ScheduleDiff {
  std::vector<TaskMove> moved;
  Duration finishDelta;      // after - before
  Energy energyCostDelta;    // at the problem's Pmin
  double utilizationDelta;   // rho(after) - rho(before)
};

ScheduleDiff diffSchedules(const Schedule& before, const Schedule& after);

class WhatIfSession {
 public:
  explicit WhatIfSession(const Problem& problem) : problem_(&problem) {}

  /// Pins `task` to start exactly at `start` in subsequent reschedules
  /// (drag + lock). Re-locking a task overwrites its slot.
  void lock(TaskId task, Time start);
  /// Removes one lock / all locks.
  void unlock(TaskId task);
  void clearLocks();

  [[nodiscard]] std::size_t numLocks() const { return locks_.size(); }
  [[nodiscard]] std::optional<Time> lockOf(TaskId task) const;

  /// Runs the full pipeline on the problem plus the current locks. The
  /// returned schedule is bound to the ORIGINAL problem (lock constraints
  /// only constrain the solver; they do not change tasks or limits), so it
  /// outlives this session. Infeasible locks surface as a timing failure.
  [[nodiscard]] ScheduleResult reschedule(
      const PowerAwareOptions& options = {}) const;

 private:
  const Problem* problem_;
  std::map<TaskId, Time> locks_;
};

}  // namespace paws
