// ListScheduler — a greedy, power-capped, time-driven baseline.
//
// A conventional list scheduler extended with a power gate: at each event
// time it starts ready tasks (all min-separation predecessors started far
// enough ago, resource idle) greedily as long as the instantaneous draw
// stays within Pmax. It is the natural "what you'd build without the
// paper" comparator for the ablation benches: it respects min separations
// and the budget, but it neither understands max separations nor min-power
// utilization, so it can produce max-separation violations (reported, not
// silently ignored) and wastes free power.
#pragma once

#include "model/problem.hpp"
#include "sched/result.hpp"

namespace paws {

struct ListSchedulerOptions {
  /// Start higher-power tasks first (fills the budget greedily); when
  /// false, lower-power first (the "cautious" variant).
  bool highPowerFirst = true;
};

class ListScheduler {
 public:
  explicit ListScheduler(const Problem& problem,
                         ListSchedulerOptions options = {});

  /// Greedy schedule. Status is kOk when every task was placed; the message
  /// lists max-separation constraints the greedy placement violated, if
  /// any (the caller decides whether that disqualifies the baseline).
  ScheduleResult schedule();

 private:
  const Problem& problem_;
  ListSchedulerOptions options_;
};

}  // namespace paws
