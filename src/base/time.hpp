// Integer time for schedules.
//
// The paper's schedules are non-preemptive with bounded integer execution
// delays (seconds for the Mars rover). We model time as a signed 64-bit
// count of *ticks*; the tick length is a convention of the problem being
// scheduled (1 tick = 1 s for all paper experiments). Integer time keeps the
// longest-path computations and the power-profile sweep exact.
//
// `Time` is a point on the schedule's time line (offset from the anchor,
// which starts at 0); `Duration` is a signed separation between two points.
// Both wrap int64_t with full arithmetic; they are distinct types so that
// e.g. adding two Times is a compile error while Time + Duration is not.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace paws {

class Duration;

/// Signed separation between two points in schedule time, in ticks.
/// Constraint-edge weights are Durations and may be negative (max-separation
/// constraints are encoded as negative-weight back edges).
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr std::int64_t ticks() const { return ticks_; }

  /// Largest representable separation; used as "unbounded slack".
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr Duration zero() { return Duration(0); }

  [[nodiscard]] constexpr bool isZero() const { return ticks_ == 0; }
  [[nodiscard]] constexpr bool isNegative() const { return ticks_ < 0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const {
    return Duration(ticks_ + o.ticks_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(ticks_ - o.ticks_);
  }
  constexpr Duration operator-() const { return Duration(-ticks_); }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration(ticks_ * k);
  }
  constexpr Duration& operator+=(Duration o) {
    ticks_ += o.ticks_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ticks_ -= o.ticks_;
    return *this;
  }

 private:
  std::int64_t ticks_ = 0;
};

/// A point on the schedule time line, as a tick offset from the anchor task
/// (which executes at Time(0)).
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr std::int64_t ticks() const { return ticks_; }

  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }
  /// Sentinel for "not scheduled yet" / unreachable in longest-path runs.
  static constexpr Time minusInfinity() {
    return Time(std::numeric_limits<std::int64_t>::min());
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Duration d) const {
    return Time(ticks_ + d.ticks());
  }
  constexpr Time operator-(Duration d) const {
    return Time(ticks_ - d.ticks());
  }
  constexpr Duration operator-(Time o) const {
    return Duration(ticks_ - o.ticks_);
  }
  constexpr Time& operator+=(Duration d) {
    ticks_ += d.ticks();
    return *this;
  }

 private:
  std::int64_t ticks_ = 0;
};

/// Tick literals; the paper's problems use 1 tick = 1 second.
namespace literals {
constexpr Duration operator""_ticks(unsigned long long t) {
  return Duration(static_cast<std::int64_t>(t));
}
constexpr Duration operator""_s(unsigned long long t) {
  return Duration(static_cast<std::int64_t>(t));
}
}  // namespace literals

std::ostream& operator<<(std::ostream& os, Time t);
std::ostream& operator<<(std::ostream& os, Duration d);

}  // namespace paws
