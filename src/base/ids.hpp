// Strongly typed dense identifiers for tasks and resources.
//
// Tasks and resources live in contiguous arrays inside `Problem`; their ids
// are array indices wrapped in distinct types so a TaskId cannot be passed
// where a ResourceId is expected. Id 0 of the task space is reserved for the
// scheduling *anchor* (the virtual task that starts at time 0, Section 5.1).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>

namespace paws {

namespace detail {

/// CRTP-free tagged index. `Tag` only disambiguates the type.
template <typename Tag>
class DenseId {
 public:
  constexpr DenseId() = default;
  constexpr explicit DenseId(std::uint32_t value) : value_(value) {}

  static constexpr DenseId invalid() { return DenseId(kInvalid); }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool isValid() const { return value_ != kInvalid; }

  constexpr auto operator<=>(const DenseId&) const = default;

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t value_ = kInvalid;
};

}  // namespace detail

struct TaskTag {};
struct ResourceTag {};

using TaskId = detail::DenseId<TaskTag>;
using ResourceId = detail::DenseId<ResourceTag>;

/// The virtual anchor task: always TaskId(0), zero delay, zero power,
/// pinned at Time(0). Every problem owns one.
inline constexpr TaskId kAnchorTask = TaskId(0);

std::ostream& operator<<(std::ostream& os, TaskId id);
std::ostream& operator<<(std::ostream& os, ResourceId id);

}  // namespace paws

template <typename Tag>
struct std::hash<paws::detail::DenseId<Tag>> {
  std::size_t operator()(paws::detail::DenseId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
