// Half-open time intervals [begin, end).
//
// Used for task activity windows, power-profile segments, and spike/gap
// reports. Half-open intervals compose without double counting: a task
// active on [0,5) and another on [5,10) never overlap at t=5, matching the
// paper's convention that a task that "finishes at t" frees its power at t.
#pragma once

#include <algorithm>
#include <iosfwd>

#include "base/check.hpp"
#include "base/time.hpp"

namespace paws {

/// Half-open interval [begin, end) on the schedule time line.
class Interval {
 public:
  constexpr Interval() = default;
  constexpr Interval(Time begin, Time end) : begin_(begin), end_(end) {}

  [[nodiscard]] constexpr Time begin() const { return begin_; }
  [[nodiscard]] constexpr Time end() const { return end_; }
  [[nodiscard]] constexpr Duration length() const { return end_ - begin_; }
  [[nodiscard]] constexpr bool empty() const { return end_ <= begin_; }

  /// True when t lies inside [begin, end).
  [[nodiscard]] constexpr bool contains(Time t) const {
    return begin_ <= t && t < end_;
  }
  [[nodiscard]] constexpr bool contains(const Interval& o) const {
    return begin_ <= o.begin_ && o.end_ <= end_;
  }
  /// True when the two half-open intervals share at least one point.
  [[nodiscard]] constexpr bool overlaps(const Interval& o) const {
    return begin_ < o.end_ && o.begin_ < end_;
  }

  /// Intersection; empty() when the intervals are disjoint.
  [[nodiscard]] Interval intersect(const Interval& o) const {
    return Interval(std::max(begin_, o.begin_), std::min(end_, o.end_));
  }

  constexpr bool operator==(const Interval&) const = default;

 private:
  Time begin_;
  Time end_;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace paws
