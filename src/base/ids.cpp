#include "base/ids.hpp"

#include <ostream>

namespace paws {

std::ostream& operator<<(std::ostream& os, TaskId id) {
  if (!id.isValid()) return os << "task(invalid)";
  return os << "task#" << id.value();
}

std::ostream& operator<<(std::ostream& os, ResourceId id) {
  if (!id.isValid()) return os << "res(invalid)";
  return os << "res#" << id.value();
}

}  // namespace paws
