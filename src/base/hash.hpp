// Shared content hashing — one FNV-1a-64 definition for the whole repo.
//
// Three subsystems hash problem/report content and must agree bit-for-bit:
// the schedule cache keys (`cache/canonical.hpp`), the RunReport
// `problem_hash` field (`obs/report.hpp`), and `pawsc trace diff`, which
// refuses to compare reports whose problem hashes differ. Keeping a single
// definition here pins them together; the constants are the standard
// FNV-1a 64-bit offset basis and prime, so hashes are stable across
// platforms and releases.
#pragma once

#include <cstdint>
#include <string_view>

namespace paws {

inline constexpr std::uint64_t kFnv1a64OffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

/// Folds `text` into a running FNV-1a-64 state — the streaming form, for
/// hashing content assembled in pieces without materializing one string.
[[nodiscard]] constexpr std::uint64_t fnv1a64Append(
    std::uint64_t state, std::string_view text) noexcept {
  for (unsigned char c : text) {
    state ^= c;
    state *= kFnv1a64Prime;
  }
  return state;
}

/// FNV-1a 64-bit of `text` from the canonical offset basis.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  return fnv1a64Append(kFnv1a64OffsetBasis, text);
}

}  // namespace paws
