#include "base/units.hpp"

#include <cstdlib>
#include <ostream>

#include "base/check.hpp"
#include "base/interval.hpp"

namespace paws {
namespace {

// Prints a value stored as integer thousandths (mW or mJ) in decimal form
// with trailing zeros trimmed: 14900 -> "14.9", 25 -> "0.025", -500 -> "-0.5".
void printThousandths(std::ostream& os, std::int64_t value) {
  if (value < 0) {
    os << '-';
    value = -value;
  }
  os << value / 1000;
  std::int64_t frac = value % 1000;
  if (frac != 0) {
    char digits[4] = {static_cast<char>('0' + frac / 100),
                      static_cast<char>('0' + (frac / 10) % 10),
                      static_cast<char>('0' + frac % 10), '\0'};
    int len = 3;
    while (len > 0 && digits[len - 1] == '0') digits[--len] = '\0';
    os << '.' << digits;
  }
}

}  // namespace

double Energy::ratioOf(Energy denominator) const {
  PAWS_CHECK_MSG(denominator.mwt_ > 0,
                 "utilization denominator must be positive, got "
                     << denominator.mwt_ << " mW·ticks");
  return static_cast<double>(mwt_) / static_cast<double>(denominator.mwt_);
}

std::ostream& operator<<(std::ostream& os, Watts w) {
  printThousandths(os, w.milliwatts());
  return os << 'W';
}

std::ostream& operator<<(std::ostream& os, Energy e) {
  printThousandths(os, e.milliwattTicks());
  return os << 'J';
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.ticks(); }

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ticks();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.begin() << ", " << iv.end() << ')';
}

}  // namespace paws
