// Lightweight precondition / invariant checking for the paws library.
//
// PAWS_CHECK is used to guard public API preconditions and internal
// invariants that must hold regardless of build type. Violations throw
// paws::CheckError (a std::logic_error) carrying the failing expression and
// source location, which makes test assertions on misuse straightforward
// (EXPECT_THROW(..., paws::CheckError)).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace paws {

/// Thrown when a PAWS_CHECK precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "PAWS_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace paws

/// Check a condition; throws paws::CheckError with the expression text on
/// failure. Active in all build types — scheduler correctness depends on
/// these guards and their cost is negligible next to graph relaxation.
#define PAWS_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond))                                                      \
      ::paws::detail::checkFailed(#cond, __FILE__, __LINE__, "");     \
  } while (false)

/// PAWS_CHECK with a streamed message: PAWS_CHECK_MSG(x > 0, "x=" << x).
#define PAWS_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream paws_check_os_;                                   \
      paws_check_os_ << stream_expr;                                       \
      ::paws::detail::checkFailed(#cond, __FILE__, __LINE__,               \
                                  paws_check_os_.str());                   \
    }                                                                      \
  } while (false)
