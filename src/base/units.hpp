// Fixed-point power and energy units.
//
// Table 2 of the paper quotes power in watts with one decimal digit
// (e.g. the solar panel delivers 14.9 W at noon). Floating point would make
// the power-profile comparisons (spike/gap detection, utilization ratios)
// depend on summation order; instead `Watts` stores an integral number of
// *milliwatts*, making every profile sum, budget comparison and energy
// integral exact. `Energy` is the product of power and integer time:
// milliwatt-ticks, which equals millijoules when 1 tick = 1 s.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

#include "base/time.hpp"

namespace paws {

class Energy;

/// Power as an exact count of milliwatts (signed; profile deltas during the
/// event sweep are negative when a task retires).
class Watts {
 public:
  constexpr Watts() = default;

  /// Named constructors; `fromWatts(double)` rounds to the nearest mW and is
  /// meant for literal-style inputs such as Table 2's one-decimal values.
  static constexpr Watts fromMilliwatts(std::int64_t mw) { return Watts(mw); }
  static constexpr Watts fromWatts(double w) {
    return Watts(static_cast<std::int64_t>(w * 1000.0 + (w >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Watts zero() { return Watts(0); }
  static constexpr Watts max() {
    return Watts(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t milliwatts() const { return mw_; }
  [[nodiscard]] constexpr double watts() const {
    return static_cast<double>(mw_) / 1000.0;
  }
  [[nodiscard]] constexpr bool isZero() const { return mw_ == 0; }

  constexpr auto operator<=>(const Watts&) const = default;

  constexpr Watts operator+(Watts o) const { return Watts(mw_ + o.mw_); }
  constexpr Watts operator-(Watts o) const { return Watts(mw_ - o.mw_); }
  constexpr Watts operator-() const { return Watts(-mw_); }
  constexpr Watts& operator+=(Watts o) {
    mw_ += o.mw_;
    return *this;
  }
  constexpr Watts& operator-=(Watts o) {
    mw_ -= o.mw_;
    return *this;
  }

  /// Energy spent holding this power level for `d` ticks.
  constexpr Energy operator*(Duration d) const;

 private:
  constexpr explicit Watts(std::int64_t mw) : mw_(mw) {}
  std::int64_t mw_ = 0;
};

/// Energy as an exact count of milliwatt-ticks (mJ at 1-second ticks).
class Energy {
 public:
  constexpr Energy() = default;
  static constexpr Energy fromMilliwattTicks(std::int64_t mwt) {
    return Energy(mwt);
  }
  static constexpr Energy zero() { return Energy(0); }

  [[nodiscard]] constexpr std::int64_t milliwattTicks() const { return mwt_; }
  /// Joules under the 1 tick = 1 s convention.
  [[nodiscard]] constexpr double joules() const {
    return static_cast<double>(mwt_) / 1000.0;
  }
  [[nodiscard]] constexpr bool isZero() const { return mwt_ == 0; }

  constexpr auto operator<=>(const Energy&) const = default;

  constexpr Energy operator+(Energy o) const { return Energy(mwt_ + o.mwt_); }
  constexpr Energy operator-(Energy o) const { return Energy(mwt_ - o.mwt_); }
  constexpr Energy& operator+=(Energy o) {
    mwt_ += o.mwt_;
    return *this;
  }

  /// Exact ratio of two energies as a double in [0, 1] for utilization
  /// metrics; denominator must be positive.
  [[nodiscard]] double ratioOf(Energy denominator) const;

 private:
  constexpr explicit Energy(std::int64_t mwt) : mwt_(mwt) {}
  std::int64_t mwt_ = 0;
};

constexpr Energy Watts::operator*(Duration d) const {
  return Energy::fromMilliwattTicks(mw_ * d.ticks());
}
constexpr Energy operator*(Duration d, Watts p) { return p * d; }

/// Power literals: 12.5_W, 300_mW.
namespace literals {
constexpr Watts operator""_W(long double w) {
  return Watts::fromWatts(static_cast<double>(w));
}
constexpr Watts operator""_W(unsigned long long w) {
  return Watts::fromMilliwatts(static_cast<std::int64_t>(w) * 1000);
}
constexpr Watts operator""_mW(unsigned long long mw) {
  return Watts::fromMilliwatts(static_cast<std::int64_t>(mw));
}
constexpr Energy operator""_J(long double j) {
  return Energy::fromMilliwattTicks(
      static_cast<std::int64_t>(j * 1000.0 + 0.5));
}
constexpr Energy operator""_J(unsigned long long j) {
  return Energy::fromMilliwattTicks(static_cast<std::int64_t>(j) * 1000);
}
}  // namespace literals

std::ostream& operator<<(std::ostream& os, Watts w);
std::ostream& operator<<(std::ostream& os, Energy e);

}  // namespace paws
