// PhaseTimer — RAII wall-clock span around one pipeline phase.
//
// On construction it reads std::chrono::steady_clock (only when the
// context is enabled); on destruction it records
//   * a kPhase span in the TraceSink (chrome://tracing row), and
//   * an observation in the MetricsRegistry histogram
//     "phase.<name>.wall_us" (microseconds).
//
// Phases are coarse (a handful per scheduler run), so PhaseTimer stays
// active even when fine-grained event tracing is compiled out with
// PAWS_TRACE=OFF — --metrics keeps working in every build.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace paws::obs {

class PhaseTimer {
 public:
  /// `name` must be static-storage text (it lands in TraceEvent::label).
  /// `kind` defaults to kPhase; the runtime executor passes kIteration so
  /// its spans land on their own chrome://tracing row.
  explicit PhaseTimer(const ObsContext& obs, const char* name,
                      std::uint32_t depth = 0,
                      TraceEventKind kind = TraceEventKind::kPhase)
      : obs_(obs), name_(name), depth_(depth), kind_(kind) {
    if (obs_.enabled()) start_ = std::chrono::steady_clock::now();
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() { finish(); }

  /// Ends the span early (idempotent); the destructor becomes a no-op.
  void finish() {
    if (finished_ || !obs_.enabled()) {
      finished_ = true;
      return;
    }
    finished_ = true;
    const auto end = std::chrono::steady_clock::now();
    const std::int64_t durNs =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count();
    if (obs_.trace != nullptr) {
      // Align the span's start to the sink's epoch.
      obs_.trace->span(kind_, obs_.trace->nowNs() - durNs, durNs, name_,
                       depth_);
    }
    if (obs_.metrics != nullptr) {
      obs_.metrics->observe(std::string("phase.") + name_ + ".wall_us",
                            static_cast<double>(durNs) / 1000.0);
    }
  }

 private:
  ObsContext obs_;
  const char* name_;
  std::uint32_t depth_;
  TraceEventKind kind_;
  std::chrono::steady_clock::time_point start_{};
  bool finished_ = false;
};

}  // namespace paws::obs
