// Minimal JSON value, parser and writer helpers for the observability
// layer: run reports (obs/report.hpp), `pawsc trace diff/summarize` over
// report files, and the bench regression gate (obs/bench_compare.hpp) all
// need to *read back* JSON the toolchain wrote, and the repo deliberately
// carries no third-party JSON dependency.
//
// Scope: full JSON syntax (objects, arrays, strings with escapes and
// \uXXXX, numbers with exponents, true/false/null) with a recursion-depth
// cap so adversarial inputs cannot blow the stack. Numbers remember
// whether they were written as integers — report fields like ts_ns and
// cost_mwt must round-trip exactly, not through a double.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace paws::obs::json {

struct Value {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;        ///< every number, as written
  std::int64_t integer = 0; ///< exact value when isInteger (no '.', 'e')
  bool isInteger = false;
  std::string text;
  std::vector<Value> items;                          ///< arrays
  std::vector<std::pair<std::string, Value>> members; ///< objects, in order

  [[nodiscard]] bool isObject() const { return kind == Kind::kObject; }
  [[nodiscard]] bool isArray() const { return kind == Kind::kArray; }
  [[nodiscard]] bool isString() const { return kind == Kind::kString; }
  [[nodiscard]] bool isNumber() const { return kind == Kind::kNumber; }

  /// Member lookup on objects; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Typed accessors with defaults — missing/mistyped fields read as the
  /// fallback so report parsing degrades instead of crashing.
  [[nodiscard]] std::int64_t asInt(std::int64_t fallback = 0) const;
  [[nodiscard]] std::uint64_t asUint(std::uint64_t fallback = 0) const;
  [[nodiscard]] double asDouble(double fallback = 0) const;
  [[nodiscard]] bool asBool(bool fallback = false) const;
  [[nodiscard]] std::string asString(std::string fallback = "") const;
};

struct ParseResult {
  bool ok = false;
  std::string error;  ///< "offset N: message" on failure
  Value value;
};

/// Parses one JSON document (trailing whitespace allowed, trailing junk is
/// an error). Depth-capped at 96 nested containers.
[[nodiscard]] ParseResult parse(std::string_view textIn);

/// Writes `s` as a JSON string literal (quotes included) with the
/// mandatory escapes.
void writeString(std::ostream& os, std::string_view s);
[[nodiscard]] std::string escaped(std::string_view s);

}  // namespace paws::obs::json
