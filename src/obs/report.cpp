#include "obs/report.hpp"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace paws::obs {

namespace {

/// Doubles print as integers when they are one (reparses as an exact
/// integer), otherwise with max_digits10 so strtod reconstructs the exact
/// bit pattern. Non-finite values have no JSON spelling and collapse to 0
/// (histogram envelopes are finite in practice).
void writeDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {  // 2^53
    os << static_cast<long long>(v);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void writeHex64(std::ostream& os, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "\"%016llx\"",
                static_cast<unsigned long long>(v));
  os << buf;
}

std::uint64_t parseHex64(std::string_view text) {
  return std::strtoull(std::string(text).c_str(), nullptr, 16);
}

using HistogramSummary = MetricsRegistry::HistogramSummary;

void writeHistogram(std::ostream& os, const HistogramSummary& h,
                    const char* indent) {
  os << "{\n" << indent << "  \"count\": " << h.count << ",\n"
     << indent << "  \"sum\": ";
  writeDouble(os, h.sum);
  os << ",\n" << indent << "  \"min\": ";
  writeDouble(os, h.min);
  os << ",\n" << indent << "  \"max\": ";
  writeDouble(os, h.max);
  os << ",\n" << indent << "  \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < HistogramSummary::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "[" << i << ", " << h.buckets[i] << "]";
  }
  os << "]\n" << indent << "}";
}

bool isTimingName(std::string_view name) {
  return name.size() >= 3 && (name.substr(name.size() - 3) == "_us" ||
                              name.substr(name.size() - 3) == "_ns");
}

}  // namespace

void stampVolatile(RunReport& report) {
  report.createdUnixMs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  char host[256] = {};
  if (::gethostname(host, sizeof host - 1) == 0) {
    report.host = host;
  } else {
    report.host.clear();
  }
}

void RunReport::normalizeVolatile() {
  createdUnixMs = 0;
  host.clear();
  for (IncumbentPoint& p : incumbents) p.tsNs = 0;
  MetricsRegistry kept;
  for (const auto& [name, v] : metrics.counters()) kept.add(name, v);
  for (const auto& [name, v] : metrics.gauges()) kept.set(name, v);
  for (const auto& [name, h] : metrics.histograms()) {
    if (!isTimingName(name)) kept.setHistogram(name, h);
  }
  metrics = std::move(kept);
}

void writeRunReport(std::ostream& os, const RunReport& r) {
  os << "{\n";
  os << "  \"schema\": " << RunReport::kSchemaVersion << ",\n";
  os << "  \"kind\": " << json::escaped(r.kind) << ",\n";

  os << "  \"problem\": {\n";
  os << "    \"name\": " << json::escaped(r.problemName) << ",\n";
  os << "    \"hash\": ";
  writeHex64(os, r.problemHash);
  os << ",\n";
  os << "    \"tasks\": " << r.numTasks << ",\n";
  os << "    \"resources\": " << r.numResources << ",\n";
  os << "    \"constraints\": " << r.numConstraints << "\n  },\n";

  os << "  \"options\": {\n";
  os << "    \"scheduler\": " << json::escaped(r.scheduler) << ",\n";
  os << "    \"trials\": " << r.trials << ",\n";
  os << "    \"jobs\": " << r.jobs << ",\n";
  os << "    \"timeout_ms\": " << r.timeoutMs << "\n  },\n";

  os << "  \"outcome\": {\n";
  os << "    \"status\": " << json::escaped(r.status) << ",\n";
  os << "    \"stop_reason\": " << json::escaped(r.stopReason) << ",\n";
  os << "    \"exit_class\": " << r.exitClass << ",\n";
  os << "    \"valid\": " << (r.valid ? "true" : "false") << ",\n";
  os << "    \"message\": " << json::escaped(r.message) << "\n  },\n";

  os << "  \"schedule\": {\n";
  os << "    \"present\": " << (r.hasSchedule ? "true" : "false") << ",\n";
  os << "    \"finish_ticks\": " << r.finishTicks << ",\n";
  os << "    \"energy_cost_mwt\": " << r.energyCostMwt << ",\n";
  os << "    \"peak_power_mw\": " << r.peakPowerMw << ",\n";
  os << "    \"bytes\": " << r.scheduleBytes << "\n  },\n";

  // Derived view: phase wall-time histograms by their phase name. The
  // parser ignores this section (it reconstructs from "metrics"), but
  // humans and plotting scripts get the pipeline breakdown without
  // knowing the phase.*.wall_us naming convention.
  os << "  \"phases\": [";
  {
    bool first = true;
    for (const auto& [name, h] : r.metrics.histograms()) {
      constexpr std::string_view kPrefix = "phase.";
      constexpr std::string_view kSuffix = ".wall_us";
      if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
      if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
      if (name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
        continue;
      }
      const std::string phase = name.substr(
          kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
      if (!first) os << ",";
      first = false;
      os << "\n    {\"name\": " << json::escaped(phase)
         << ", \"count\": " << h.count << ", \"wall_us\": ";
      writeDouble(os, h.sum);
      os << "}";
    }
    if (!first) os << "\n  ";
  }
  os << "],\n";

  os << "  \"metrics\": {\n    \"counters\": {";
  {
    bool first = true;
    for (const auto& [name, v] : r.metrics.counters()) {
      if (!first) os << ",";
      first = false;
      os << "\n      " << json::escaped(name) << ": " << v;
    }
    if (!first) os << "\n    ";
  }
  os << "},\n    \"gauges\": {";
  {
    bool first = true;
    for (const auto& [name, v] : r.metrics.gauges()) {
      if (!first) os << ",";
      first = false;
      os << "\n      " << json::escaped(name) << ": ";
      writeDouble(os, v);
    }
    if (!first) os << "\n    ";
  }
  os << "},\n    \"histograms\": {";
  {
    bool first = true;
    for (const auto& [name, h] : r.metrics.histograms()) {
      if (!first) os << ",";
      first = false;
      os << "\n      " << json::escaped(name) << ": ";
      writeHistogram(os, h, "      ");
    }
    if (!first) os << "\n    ";
  }
  os << "}\n  },\n";

  os << "  \"incumbents\": [";
  {
    bool first = true;
    for (const IncumbentPoint& p : r.incumbents) {
      if (!first) os << ",";
      first = false;
      os << "\n    {\"ts_ns\": " << p.tsNs << ", \"cost_mwt\": " << p.costMwt
         << "}";
    }
    if (!first) os << "\n  ";
  }
  os << "],\n";

  os << "  \"meta\": {\n";
  os << "    \"tool\": \"pawsc\",\n";
  os << "    \"created_unix_ms\": " << r.createdUnixMs << ",\n";
  os << "    \"host\": " << json::escaped(r.host) << "\n  }\n";
  os << "}\n";
}

std::string runReportToJson(const RunReport& report) {
  std::ostringstream os;
  writeRunReport(os, report);
  return os.str();
}

ReportParseResult parseRunReport(std::string_view jsonText) {
  ReportParseResult out;
  const json::ParseResult parsed = json::parse(jsonText);
  if (!parsed.ok) {
    out.error = "invalid JSON: " + parsed.error;
    return out;
  }
  const json::Value& v = parsed.value;
  if (!v.isObject()) {
    out.error = "report must be a JSON object";
    return out;
  }
  if (const json::Value* schema = v.find("schema")) {
    const std::int64_t version = schema->asInt(RunReport::kSchemaVersion);
    if (version > RunReport::kSchemaVersion) {
      out.error =
          "report schema " + std::to_string(version) + " is newer than " +
          std::to_string(RunReport::kSchemaVersion);
      return out;
    }
  }
  RunReport& r = out.report;
  if (const json::Value* kind = v.find("kind")) r.kind = kind->asString();

  if (const json::Value* p = v.find("problem"); p != nullptr && p->isObject()) {
    if (const json::Value* f = p->find("name")) r.problemName = f->asString();
    if (const json::Value* f = p->find("hash")) {
      r.problemHash = parseHex64(f->asString());
    }
    if (const json::Value* f = p->find("tasks")) r.numTasks = f->asUint();
    if (const json::Value* f = p->find("resources")) {
      r.numResources = f->asUint();
    }
    if (const json::Value* f = p->find("constraints")) {
      r.numConstraints = f->asUint();
    }
  }

  if (const json::Value* o = v.find("options"); o != nullptr && o->isObject()) {
    if (const json::Value* f = o->find("scheduler")) {
      r.scheduler = f->asString();
    }
    if (const json::Value* f = o->find("trials")) r.trials = f->asInt(1);
    if (const json::Value* f = o->find("jobs")) r.jobs = f->asInt(1);
    if (const json::Value* f = o->find("timeout_ms")) {
      r.timeoutMs = f->asInt(-1);
    }
  }

  if (const json::Value* o = v.find("outcome"); o != nullptr && o->isObject()) {
    if (const json::Value* f = o->find("status")) r.status = f->asString();
    if (const json::Value* f = o->find("stop_reason")) {
      r.stopReason = f->asString("none");
    }
    if (const json::Value* f = o->find("exit_class")) r.exitClass = f->asInt();
    if (const json::Value* f = o->find("valid")) r.valid = f->asBool();
    if (const json::Value* f = o->find("message")) r.message = f->asString();
  }

  if (const json::Value* s = v.find("schedule");
      s != nullptr && s->isObject()) {
    if (const json::Value* f = s->find("present")) r.hasSchedule = f->asBool();
    if (const json::Value* f = s->find("finish_ticks")) {
      r.finishTicks = f->asInt();
    }
    if (const json::Value* f = s->find("energy_cost_mwt")) {
      r.energyCostMwt = f->asInt();
    }
    if (const json::Value* f = s->find("peak_power_mw")) {
      r.peakPowerMw = f->asInt();
    }
    if (const json::Value* f = s->find("bytes")) r.scheduleBytes = f->asUint();
  }

  if (const json::Value* m = v.find("metrics"); m != nullptr && m->isObject()) {
    if (const json::Value* c = m->find("counters");
        c != nullptr && c->isObject()) {
      for (const auto& [name, value] : c->members) {
        r.metrics.add(name, value.asUint());
      }
    }
    if (const json::Value* g = m->find("gauges");
        g != nullptr && g->isObject()) {
      for (const auto& [name, value] : g->members) {
        r.metrics.set(name, value.asDouble());
      }
    }
    if (const json::Value* hs = m->find("histograms");
        hs != nullptr && hs->isObject()) {
      for (const auto& [name, hv] : hs->members) {
        if (!hv.isObject()) continue;
        HistogramSummary h;
        if (const json::Value* f = hv.find("count")) h.count = f->asUint();
        if (const json::Value* f = hv.find("sum")) h.sum = f->asDouble();
        if (const json::Value* f = hv.find("min")) h.min = f->asDouble();
        if (const json::Value* f = hv.find("max")) h.max = f->asDouble();
        if (const json::Value* b = hv.find("buckets");
            b != nullptr && b->isArray()) {
          for (const json::Value& pair : b->items) {
            if (!pair.isArray() || pair.items.size() != 2) continue;
            const std::uint64_t idx = pair.items[0].asUint();
            if (idx >= HistogramSummary::kNumBuckets) continue;
            h.buckets[idx] = pair.items[1].asUint();
          }
        }
        r.metrics.setHistogram(name, h);
      }
    }
  }

  if (const json::Value* inc = v.find("incumbents");
      inc != nullptr && inc->isArray()) {
    for (const json::Value& point : inc->items) {
      if (!point.isObject()) continue;
      IncumbentPoint p;
      if (const json::Value* f = point.find("ts_ns")) p.tsNs = f->asInt();
      if (const json::Value* f = point.find("cost_mwt")) {
        p.costMwt = f->asInt();
      }
      r.incumbents.push_back(p);
    }
  }

  if (const json::Value* meta = v.find("meta");
      meta != nullptr && meta->isObject()) {
    if (const json::Value* f = meta->find("created_unix_ms")) {
      r.createdUnixMs = f->asInt();
    }
    if (const json::Value* f = meta->find("host")) r.host = f->asString();
  }

  out.ok = true;
  return out;
}

ReportParseResult loadRunReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ReportParseResult out;
    out.error = "cannot open " + path;
    return out;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ReportParseResult out = parseRunReport(buffer.str());
  if (!out.ok && out.error.find(path) == std::string::npos) {
    out.error = path + ": " + out.error;
  }
  return out;
}

}  // namespace paws::obs
