// Offline analysis of recorded observability artifacts — the engine behind
// the `pawsc trace` subcommand family:
//
//   * summarize — digest a JSONL search trace (writeSearchTraceJsonl) or a
//     run report: per-kind event counts, the phase breakdown, and the
//     top-k hottest tasks ranked by backtrack + delay decisions.
//   * diff      — compare two run reports metric by metric: exact deltas
//     for every shared counter/gauge/scalar, relative-threshold flagging
//     for the rest, and a hard "deterministic mismatch" class for metrics
//     that must be byte-equal between runs of the same problem (schedule
//     bytes, finish, energy, search.* pipeline counters) regardless of
//     --jobs or wall-clock noise.
//   * incumbents — render a report's anytime curve as an aligned table or
//     CSV for plotting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/report.hpp"

namespace paws::obs {

// ----- trace / report summarize ----------------------------------------

struct TraceSummaryOptions {
  std::size_t topK = 5;  ///< hottest-task listing length
};

/// Summarizes `text`, which may be either a JSONL search trace (one event
/// object per line) or a single run-report document (auto-detected).
/// Returns the rendered summary; parse problems land in `error` (non-empty
/// = failure, summary text undefined).
struct TraceSummary {
  bool ok = false;
  std::string error;
  std::string text;
};
[[nodiscard]] TraceSummary summarizeTraceText(
    std::string_view text, const TraceSummaryOptions& options = {});

// ----- report diff ------------------------------------------------------

struct ReportDiffOptions {
  /// Relative change beyond which a noisy metric is flagged (|b-a| over
  /// max(|a|, 1)).
  double relTolerance = 0.10;
};

struct ReportDiff {
  struct Entry {
    std::string name;
    double a = 0;
    double b = 0;
    bool deterministic = false;  ///< must match exactly between runs
    bool flagged = false;        ///< exceeded tolerance (or any determinism
                                 ///< mismatch)
    bool onlyInA = false;
    bool onlyInB = false;
  };
  std::vector<Entry> entries;            ///< sorted by name
  std::size_t flaggedCount = 0;          ///< noisy metrics over tolerance
  std::size_t deterministicMismatches = 0;
  bool comparableProblems = true;  ///< problem hashes matched

  /// True when the two reports agree on everything that must be equal.
  [[nodiscard]] bool deterministicOk() const {
    return deterministicMismatches == 0;
  }
};

/// True for metric names whose values are run-invariant for a fixed
/// problem + options: the schedule digest (schedule.*), problem shape
/// (problem.*) and the single-threaded search.* pipeline counters. Wall
/// times, guard/executor outcomes and parallel-search node counts are
/// noisy and only threshold-flagged.
[[nodiscard]] bool isDeterministicMetric(std::string_view name);

[[nodiscard]] ReportDiff diffReports(const RunReport& a, const RunReport& b,
                                     const ReportDiffOptions& options = {});
[[nodiscard]] std::string renderReportDiff(const ReportDiff& diff,
                                           std::string_view labelA,
                                           std::string_view labelB);

// ----- incumbent curve --------------------------------------------------

/// The report's anytime curve; `csv` selects machine form
/// (ts_ns,cost_mwt header + rows) over the aligned human table.
[[nodiscard]] std::string renderIncumbents(const RunReport& report, bool csv);

}  // namespace paws::obs
