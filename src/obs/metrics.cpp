#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

namespace paws::obs {

namespace {

/// Prints doubles compactly: integers without a fraction, otherwise three
/// decimals — keeps CSV diffable and the summary table readable.
void printNumber(std::ostream& os, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << std::fixed << std::setprecision(3) << v
       << std::defaultfloat << std::setprecision(6);
  }
}

}  // namespace

std::size_t MetricsRegistry::HistogramSummary::bucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // < 1, zero, negative, NaN
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp with m in [0.5, 1)
  // value in [2^(exp-1), 2^exp) -> bucket exp, clamped to the top bucket.
  if (exp < 1) return 1;
  return std::min<std::size_t>(static_cast<std::size_t>(exp),
                               kNumBuckets - 1);
}

double MetricsRegistry::HistogramSummary::bucketLowerBound(std::size_t i) {
  if (i == 0) return -std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i) - 1);  // 2^(i-1)
}

double MetricsRegistry::HistogramSummary::bucketUpperBound(std::size_t i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

void MetricsRegistry::HistogramSummary::observe(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[bucketIndex(value)];
}

void MetricsRegistry::HistogramSummary::merge(const HistogramSummary& other) {
  if (other.count == 0) return;  // nothing observed: no envelope to widen
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
}

double MetricsRegistry::HistogramSummary::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The envelope is tracked exactly; the buckets only refine the interior.
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the q-th observation, 1-based (nearest-rank definition).
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] < target) {
      cumulative += buckets[i];
      continue;
    }
    // The target rank lands in bucket i: interpolate linearly between the
    // bucket bounds, clamped to the exact observed envelope.
    const double lo = std::max(bucketLowerBound(i), min);
    const double hi = std::min(bucketUpperBound(i), max);
    if (!(hi > lo)) return std::clamp(lo, min, max);
    const double within = (static_cast<double>(target - cumulative) - 0.5) /
                          static_cast<double>(buckets[i]);
    return std::clamp(lo + within * (hi - lo), min, max);
  }
  return max;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), HistogramSummary{}).first;
  }
  it->second.observe(value);
}

void MetricsRegistry::setHistogram(std::string_view name,
                                   const HistogramSummary& summary) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name), summary);
  } else {
    it->second = summary;
  }
}

MetricsRegistry::HistogramSummary MetricsRegistry::histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSummary{} : it->second;
}

bool MetricsRegistry::has(std::string_view name) const {
  return counters_.find(name) != counters_.end() ||
         gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end();
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsRegistry& MetricsRegistry::operator+=(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) add(name, v);
  for (const auto& [name, v] : other.gauges_) set(name, v);
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, HistogramSummary{}).first;
    }
    it->second.merge(h);
  }
  return *this;
}

void MetricsRegistry::writeCsv(std::ostream& os) const {
  os << "name,kind,value,count,sum,min,max,mean,p50,p90,p99\n";
  // Merge the three families into one name-sorted listing.
  struct Row {
    std::string_view name;
    int family;  // 0 counter, 1 gauge, 2 histogram
  };
  std::vector<Row> rows;
  rows.reserve(size());
  for (const auto& [name, v] : counters_) rows.push_back({name, 0});
  for (const auto& [name, v] : gauges_) rows.push_back({name, 1});
  for (const auto& [name, h] : histograms_) rows.push_back({name, 2});
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });

  for (const Row& row : rows) {
    os << row.name << ',';
    switch (row.family) {
      case 0:
        os << "counter," << counters_.find(row.name)->second << ",,,,,,,,\n";
        break;
      case 1:
        os << "gauge,";
        printNumber(os, gauges_.find(row.name)->second);
        os << ",,,,,,,,\n";
        break;
      default: {
        const HistogramSummary& h = histograms_.find(row.name)->second;
        os << "histogram,," << h.count << ',';
        printNumber(os, h.sum);
        os << ',';
        printNumber(os, h.min);
        os << ',';
        printNumber(os, h.max);
        os << ',';
        printNumber(os, h.mean());
        os << ',';
        printNumber(os, h.quantile(0.50));
        os << ',';
        printNumber(os, h.quantile(0.90));
        os << ',';
        printNumber(os, h.quantile(0.99));
        os << "\n";
        break;
      }
    }
  }
}

std::string MetricsRegistry::toCsv() const {
  std::ostringstream os;
  writeCsv(os);
  return os.str();
}

std::string MetricsRegistry::renderTable() const {
  std::ostringstream os;
  if (!counters_.empty() || !gauges_.empty()) {
    os << "metrics:\n";
    for (const auto& [name, v] : counters_) {
      os << "  " << std::left << std::setw(34) << name << std::right
         << std::setw(12) << v << "\n";
    }
    for (const auto& [name, v] : gauges_) {
      os << "  " << std::left << std::setw(34) << name << std::right
         << std::setw(12);
      printNumber(os, v);
      os << "\n";
    }
  }
  if (!histograms_.empty()) {
    os << "timings (and other distributions):\n";
    os << "  " << std::left << std::setw(34) << "name" << std::right
       << std::setw(7) << "count" << std::setw(11) << "mean"
       << std::setw(11) << "p50" << std::setw(11) << "p90" << std::setw(11)
       << "p99" << std::setw(11) << "max" << std::setw(13) << "total"
       << "\n";
    for (const auto& [name, h] : histograms_) {
      os << "  " << std::left << std::setw(34) << name << std::right
         << std::setw(7) << h.count << std::setw(11);
      printNumber(os, h.mean());
      os << std::setw(11);
      printNumber(os, h.quantile(0.50));
      os << std::setw(11);
      printNumber(os, h.quantile(0.90));
      os << std::setw(11);
      printNumber(os, h.quantile(0.99));
      os << std::setw(11);
      printNumber(os, h.max);
      os << std::setw(13);
      printNumber(os, h.sum);
      os << "\n";
    }
  }
  return os.str();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace paws::obs
