#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

namespace paws::obs {

namespace {

/// Prints doubles compactly: integers without a fraction, otherwise three
/// decimals — keeps CSV diffable and the summary table readable.
void printNumber(std::ostream& os, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << std::fixed << std::setprecision(3) << v
       << std::defaultfloat << std::setprecision(6);
  }
}

}  // namespace

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name),
                        HistogramSummary{1, value, value, value});
    return;
  }
  HistogramSummary& h = it->second;
  ++h.count;
  h.sum += value;
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
}

MetricsRegistry::HistogramSummary MetricsRegistry::histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSummary{} : it->second;
}

bool MetricsRegistry::has(std::string_view name) const {
  return counters_.find(name) != counters_.end() ||
         gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end();
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsRegistry& MetricsRegistry::operator+=(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) add(name, v);
  for (const auto& [name, v] : other.gauges_) set(name, v);
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
      continue;
    }
    HistogramSummary& mine = it->second;
    if (h.count == 0) continue;
    if (mine.count == 0) {
      mine = h;
      continue;
    }
    mine.count += h.count;
    mine.sum += h.sum;
    mine.min = std::min(mine.min, h.min);
    mine.max = std::max(mine.max, h.max);
  }
  return *this;
}

void MetricsRegistry::writeCsv(std::ostream& os) const {
  os << "name,kind,value,count,sum,min,max,mean\n";
  // Merge the three families into one name-sorted listing.
  struct Row {
    std::string_view name;
    int family;  // 0 counter, 1 gauge, 2 histogram
  };
  std::vector<Row> rows;
  rows.reserve(size());
  for (const auto& [name, v] : counters_) rows.push_back({name, 0});
  for (const auto& [name, v] : gauges_) rows.push_back({name, 1});
  for (const auto& [name, h] : histograms_) rows.push_back({name, 2});
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });

  for (const Row& row : rows) {
    os << row.name << ',';
    switch (row.family) {
      case 0:
        os << "counter," << counters_.find(row.name)->second << ",,,,,\n";
        break;
      case 1:
        os << "gauge,";
        printNumber(os, gauges_.find(row.name)->second);
        os << ",,,,,\n";
        break;
      default: {
        const HistogramSummary& h = histograms_.find(row.name)->second;
        os << "histogram,," << h.count << ',';
        printNumber(os, h.sum);
        os << ',';
        printNumber(os, h.min);
        os << ',';
        printNumber(os, h.max);
        os << ',';
        printNumber(os, h.mean());
        os << "\n";
        break;
      }
    }
  }
}

std::string MetricsRegistry::toCsv() const {
  std::ostringstream os;
  writeCsv(os);
  return os.str();
}

std::string MetricsRegistry::renderTable() const {
  std::ostringstream os;
  if (!counters_.empty() || !gauges_.empty()) {
    os << "metrics:\n";
    for (const auto& [name, v] : counters_) {
      os << "  " << std::left << std::setw(34) << name << std::right
         << std::setw(12) << v << "\n";
    }
    for (const auto& [name, v] : gauges_) {
      os << "  " << std::left << std::setw(34) << name << std::right
         << std::setw(12);
      printNumber(os, v);
      os << "\n";
    }
  }
  if (!histograms_.empty()) {
    os << "timings (and other distributions):\n";
    os << "  " << std::left << std::setw(34) << "name" << std::right
       << std::setw(8) << "count" << std::setw(12) << "mean"
       << std::setw(12) << "min" << std::setw(12) << "max" << std::setw(14)
       << "total" << "\n";
    for (const auto& [name, h] : histograms_) {
      os << "  " << std::left << std::setw(34) << name << std::right
         << std::setw(8) << h.count << std::setw(12);
      printNumber(os, h.mean());
      os << std::setw(12);
      printNumber(os, h.min);
      os << std::setw(12);
      printNumber(os, h.max);
      os << std::setw(14);
      printNumber(os, h.sum);
      os << "\n";
    }
  }
  return os.str();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace paws::obs
