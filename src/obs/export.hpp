// Serializers for recorded search traces.
//
//   * writeSearchTraceJson  — chrome://tracing / Perfetto "traceEvents"
//     JSON. Follows the event-shape conventions of io/writer.cpp's
//     writeChromeTrace (pid/tid/ts/dur, "X" spans, metadata thread names),
//     but renders the *search* — phases, longest-path runs and per-decision
//     instants on one row per subsystem — instead of the schedule.
//   * writeSearchTraceJsonl — one JSON object per line, in recording
//     order; the stable machine-readable form for diffing and scripting.
//   * renderObsSummary      — the CLI's --obs-summary text: the metrics
//     table plus an event-count digest of the trace.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace paws::obs {

void writeSearchTraceJson(std::ostream& os, const TraceSink& sink);
[[nodiscard]] std::string searchTraceToJson(const TraceSink& sink);

void writeSearchTraceJsonl(std::ostream& os, const TraceSink& sink);
[[nodiscard]] std::string searchTraceToJsonl(const TraceSink& sink);

[[nodiscard]] std::string renderObsSummary(const MetricsRegistry& metrics,
                                           const TraceSink* sink = nullptr);

}  // namespace paws::obs
