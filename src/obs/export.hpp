// Serializers for recorded search traces.
//
//   * writeSearchTraceJson  — chrome://tracing / Perfetto "traceEvents"
//     JSON. Follows the event-shape conventions of io/writer.cpp's
//     writeChromeTrace (pid/tid/ts/dur, "X" spans, metadata thread names),
//     but renders the *search* — phases, longest-path runs and per-decision
//     instants on one row per subsystem — instead of the schedule.
//   * writeSearchTraceJsonl — one JSON object per line, in recording
//     order; the stable machine-readable form for diffing and scripting.
//   * renderObsSummary      — the CLI's --obs-summary text: the metrics
//     table plus an event-count digest of the trace.
//   * writeOpenMetrics      — Prometheus / OpenMetrics text exposition of a
//     MetricsRegistry: counters as `<name>_total`, gauges verbatim, and the
//     log2-bucketed histograms as cumulative `_bucket{le="..."}` series.
//     This is the scrape format the planned pawsd service will serve; the
//     CLI exposes it as `--openmetrics` for pipeline smoke tests.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace paws::obs {

class IncumbentLog;

void writeSearchTraceJson(std::ostream& os, const TraceSink& sink);
[[nodiscard]] std::string searchTraceToJson(const TraceSink& sink);

void writeSearchTraceJsonl(std::ostream& os, const TraceSink& sink);
[[nodiscard]] std::string searchTraceToJsonl(const TraceSink& sink);

/// Optional context lines appended to the --obs-summary text: the guard's
/// stop reason (omitted while empty or "none") and the incumbent
/// trajectory length.
struct ObsSummaryExtras {
  const IncumbentLog* incumbents = nullptr;
  std::string_view stopReason;
};

[[nodiscard]] std::string renderObsSummary(
    const MetricsRegistry& metrics, const TraceSink* sink = nullptr,
    const ObsSummaryExtras& extras = {});

/// OpenMetrics text exposition. Metric names are prefixed with `prefix`
/// and sanitized (dots become underscores); the output ends with `# EOF`
/// as the spec requires.
void writeOpenMetrics(std::ostream& os, const MetricsRegistry& metrics,
                      std::string_view prefix = "paws");
[[nodiscard]] std::string toOpenMetrics(const MetricsRegistry& metrics,
                                        std::string_view prefix = "paws");

}  // namespace paws::obs
