#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace paws::obs::json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::int64_t Value::asInt(std::int64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return isInteger ? integer : static_cast<std::int64_t>(number);
}

std::uint64_t Value::asUint(std::uint64_t fallback) const {
  const std::int64_t v = asInt(static_cast<std::int64_t>(fallback));
  return v < 0 ? fallback : static_cast<std::uint64_t>(v);
}

double Value::asDouble(double fallback) const {
  return kind == Kind::kNumber ? number : fallback;
}

bool Value::asBool(bool fallback) const {
  return kind == Kind::kBool ? boolean : fallback;
}

std::string Value::asString(std::string fallback) const {
  return kind == Kind::kString ? text : fallback;
}

namespace {

constexpr int kMaxDepth = 96;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult out;
    skipWs();
    if (!parseValue(out.value, 0)) {
      out.error = error_;
      return out;
    }
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing characters after the document");
      out.error = error_;
      return out;
    }
    out.ok = true;
    return out;
  }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + message;
    }
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool expect(char c) {
    if (atEnd() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parseValue(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (atEnd()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parseObject(out, depth);
      case '[':
        return parseArray(out, depth);
      case '"':
        out.kind = Value::Kind::kString;
        return parseString(out.text);
      case 't':
        return parseLiteral("true", out, Value::Kind::kBool, true);
      case 'f':
        return parseLiteral("false", out, Value::Kind::kBool, false);
      case 'n':
        return parseLiteral("null", out, Value::Kind::kNull, false);
      default:
        return parseNumber(out);
    }
  }

  bool parseLiteral(std::string_view word, Value& out, Value::Kind kind,
                    bool boolean) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    out.kind = kind;
    out.boolean = boolean;
    return true;
  }

  bool parseObject(Value& out, int depth) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (atEnd() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parseString(key)) return false;
      skipWs();
      if (!expect(':')) return false;
      skipWs();
      Value value;
      if (!parseValue(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skipWs();
      if (atEnd()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  bool parseArray(Value& out, int depth) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      Value item;
      if (!parseValue(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skipWs();
      if (atEnd()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  bool parseHex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape digit");
      }
    }
    return true;
  }

  void appendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parseString(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (atEnd()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (atEnd()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parseHex4(cp)) return false;
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            const std::size_t save = pos_;
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parseHex4(lo)) return false;
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              pos_ = save;  // lone high surrogate; keep it as-is
            }
          }
          appendUtf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parseNumber(Value& out) {
    const std::size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    bool sawDigit = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
      sawDigit = true;
    }
    bool integral = true;
    if (!atEnd() && peek() == '.') {
      integral = false;
      ++pos_;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        sawDigit = true;
      }
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!sawDigit) return fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    out.kind = Value::Kind::kNumber;
    errno = 0;
    out.number = std::strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end != nullptr && *end == '\0') {
        out.integer = v;
        out.isInteger = true;
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult parse(std::string_view textIn) { return Parser(textIn).run(); }

void writeString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string escaped(std::string_view s) {
  std::ostringstream os;
  writeString(os, s);
  return os.str();
}

}  // namespace paws::obs::json
