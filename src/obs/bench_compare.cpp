#include "obs/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.hpp"

namespace paws::obs {

namespace {

struct BenchRow {
  double wallNs = 0;
  std::map<std::string, double> counters;
};

using Suite = std::map<std::string, BenchRow>;
using Results = std::map<std::string, Suite>;

bool parseResults(std::string_view text, Results& out, std::string& error,
                  std::string_view label) {
  const json::ParseResult parsed = json::parse(text);
  if (!parsed.ok) {
    error = std::string(label) + ": " + parsed.error;
    return false;
  }
  const json::Value* suites = parsed.value.find("suites");
  if (suites == nullptr || !suites->isObject()) {
    error = std::string(label) + ": missing \"suites\" object";
    return false;
  }
  for (const auto& [suiteName, suiteValue] : suites->members) {
    if (!suiteValue.isObject()) continue;
    Suite& suite = out[suiteName];
    for (const auto& [benchName, benchValue] : suiteValue.members) {
      if (!benchValue.isObject()) continue;
      BenchRow row;
      if (const json::Value* f = benchValue.find("wall_ns")) {
        row.wallNs = f->asDouble();
      }
      if (const json::Value* c = benchValue.find("counters");
          c != nullptr && c->isObject()) {
        for (const auto& [counterName, counterValue] : c->members) {
          row.counters[counterName] = counterValue.asDouble();
        }
      }
      suite.emplace(benchName, std::move(row));
    }
  }
  return true;
}

void printCompact(std::ostream& os, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  os << buf;
}

}  // namespace

BenchComparison compareBenchResults(std::string_view baselineJson,
                                    std::string_view currentJson,
                                    const BenchCompareOptions& options) {
  BenchComparison out;
  Results baseline;
  Results current;
  if (!parseResults(baselineJson, baseline, out.error, "baseline") ||
      !parseResults(currentJson, current, out.error, "current")) {
    return out;
  }

  const auto isExact = [&options](const std::string& name) {
    return std::find(options.exactCounters.begin(),
                     options.exactCounters.end(),
                     name) != options.exactCounters.end();
  };

  std::vector<BenchComparison::Finding> hard;
  std::vector<BenchComparison::Finding> soft;

  for (const auto& [suiteName, baseSuite] : baseline) {
    const auto curSuiteIt = current.find(suiteName);
    if (curSuiteIt == current.end()) {
      hard.push_back({suiteName, "", "presence", 1, 0, true,
                      "suite missing from current run"});
      continue;
    }
    const Suite& curSuite = curSuiteIt->second;
    for (const auto& [benchName, baseRow] : baseSuite) {
      const auto curIt = curSuite.find(benchName);
      if (curIt == curSuite.end()) {
        hard.push_back({suiteName, benchName, "presence", 1, 0, true,
                        "benchmark missing from current run"});
        continue;
      }
      const BenchRow& curRow = curIt->second;
      ++out.benchesCompared;

      for (const auto& [counterName, baseValue] : baseRow.counters) {
        if (!isExact(counterName)) continue;
        const auto curCounter = curRow.counters.find(counterName);
        if (curCounter == curRow.counters.end()) {
          hard.push_back({suiteName, benchName, counterName, baseValue, 0,
                          true, "exact counter missing from current run"});
        } else if (curCounter->second != baseValue) {
          hard.push_back({suiteName, benchName, counterName, baseValue,
                          curCounter->second, true,
                          "exact counter changed (determinism witness)"});
        }
      }

      if (baseRow.wallNs > 0 && curRow.wallNs > 0) {
        const double rel = (curRow.wallNs - baseRow.wallNs) / baseRow.wallNs;
        if (rel > options.wallTolerance) {
          char note[80];
          std::snprintf(note, sizeof note, "%.0f%% slower than baseline",
                        rel * 100.0);
          BenchComparison::Finding f{suiteName,    benchName,
                                     "wall_ns",    baseRow.wallNs,
                                     curRow.wallNs, options.failOnWall,
                                     note};
          (options.failOnWall ? hard : soft).push_back(std::move(f));
        }
      }
    }
  }

  out.hardCount = hard.size();
  out.softCount = soft.size();
  out.findings = std::move(hard);
  out.findings.insert(out.findings.end(), soft.begin(), soft.end());
  return out;
}

std::string renderBenchComparison(const BenchComparison& comparison,
                                  std::string_view baselineLabel,
                                  std::string_view currentLabel) {
  std::ostringstream os;
  os << "bench diff: baseline=" << baselineLabel
     << " current=" << currentLabel << "\n";
  if (!comparison.error.empty()) {
    os << "error: " << comparison.error << "\n";
    return os.str();
  }
  os << comparison.benchesCompared << " benchmarks compared, "
     << comparison.hardCount << " hard regressions, " << comparison.softCount
     << " warnings\n";
  for (const BenchComparison::Finding& f : comparison.findings) {
    os << (f.hard ? "FAIL " : "warn ") << f.suite;
    if (!f.bench.empty()) os << " / " << f.bench;
    os << " [" << f.metric << "] ";
    printCompact(os, f.baseline);
    os << " -> ";
    printCompact(os, f.current);
    os << " (" << f.note << ")\n";
  }
  if (comparison.ok()) os << "OK: no hard regressions\n";
  return os.str();
}

}  // namespace paws::obs
