#include "obs/incumbents.hpp"

namespace paws::obs {

IncumbentLog::IncumbentLog() : epoch_(std::chrono::steady_clock::now()) {}

std::int64_t IncumbentLog::nowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool IncumbentLog::record(std::int64_t costMwt) {
  return recordAt(nowNs(), costMwt);
}

bool IncumbentLog::recordAt(std::int64_t tsNs, std::int64_t costMwt) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!points_.empty() && costMwt >= points_.back().costMwt) return false;
  points_.push_back(IncumbentPoint{tsNs, costMwt});
  return true;
}

std::vector<IncumbentPoint> IncumbentLog::points() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return points_;
}

std::size_t IncumbentLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return points_.size();
}

void IncumbentLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
}

}  // namespace paws::obs
