// ObsContext — the observability hooks every instrumented component
// accepts: an optional TraceSink (typed search events), an optional
// MetricsRegistry (named counters/gauges/histograms) and an optional
// IncumbentLog (the anytime time-vs-quality trajectory).
//
// The struct is three raw pointers so it can be embedded by value in the
// scheduler option structs and copied freely; all pointers are borrowed
// and must outlive the run they observe. A default-constructed context is
// fully disabled: every instrumentation site reduces to one null check
// (the "null-sink fast path").
#pragma once

namespace paws::obs {

class TraceSink;
class MetricsRegistry;
class IncumbentLog;

struct ObsContext {
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  IncumbentLog* incumbents = nullptr;

  [[nodiscard]] bool enabled() const {
    return trace != nullptr || metrics != nullptr || incumbents != nullptr;
  }
  /// Fills any unset hook from `parent` — how an outer pipeline stage
  /// propagates its context into nested stages without clobbering hooks
  /// the caller set explicitly.
  void inheritFrom(const ObsContext& parent) {
    if (trace == nullptr) trace = parent.trace;
    if (metrics == nullptr) metrics = parent.metrics;
    if (incumbents == nullptr) incumbents = parent.incumbents;
  }
};

}  // namespace paws::obs
