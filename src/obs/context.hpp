// ObsContext — the two observability hooks every instrumented component
// accepts: an optional TraceSink (typed search events) and an optional
// MetricsRegistry (named counters/gauges/histograms).
//
// The struct is two raw pointers so it can be embedded by value in the
// scheduler option structs and copied freely; both pointers are borrowed
// and must outlive the run they observe. A default-constructed context is
// fully disabled: every instrumentation site reduces to one null check
// (the "null-sink fast path").
#pragma once

namespace paws::obs {

class TraceSink;
class MetricsRegistry;

struct ObsContext {
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  [[nodiscard]] bool enabled() const {
    return trace != nullptr || metrics != nullptr;
  }
  /// Fills any unset hook from `parent` — how an outer pipeline stage
  /// propagates its context into nested stages without clobbering hooks
  /// the caller set explicitly.
  void inheritFrom(const ObsContext& parent) {
    if (trace == nullptr) trace = parent.trace;
    if (metrics == nullptr) metrics = parent.metrics;
  }
};

}  // namespace paws::obs
