// IncumbentLog — the anytime-result trajectory of one scheduling run.
//
// Every time a search improves its best-known schedule ("incumbent"), the
// scheduler records (tsNs, costMilliwattTicks): nanoseconds since the log
// was created and the incumbent's energy cost above Pmin in integer
// milliwatt-ticks. The resulting curve is the time-vs-quality profile the
// anytime literature evaluates — how good is the answer after 10 ms, after
// 50 ms, at the deadline — and lands in the RunReport (obs/report.hpp) and
// `pawsc trace incumbents`.
//
// Producers:
//   * ExhaustiveScheduler — each CAS win on the shared incumbent bound
//     (parallel workers race; the log's own monotonicity filter keeps the
//     curve consistent);
//   * MinPowerScheduler — every accepted gap-filling move that lowered Ec,
//     plus the cost of the schedule it started from;
//   * PowerAwareScheduler trials inherit the same log, so a multi-trial
//     pipeline produces one merged curve.
//
// The log is thread-safe (a mutex; improvements are rare relative to
// search nodes) and *monotonic by construction*: a point is appended only
// when its cost is strictly below the last appended cost, so out-of-order
// publication from racing workers can never produce a rising curve.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace paws::obs {

struct IncumbentPoint {
  std::int64_t tsNs = 0;     ///< steady-clock offset from the log's epoch
  std::int64_t costMwt = 0;  ///< energy cost above Pmin, milliwatt-ticks

  [[nodiscard]] bool operator==(const IncumbentPoint&) const = default;
};

class IncumbentLog {
 public:
  IncumbentLog();

  /// Appends (now, costMwt) iff costMwt is strictly below the last
  /// appended cost (always true for the first point). Returns whether the
  /// point was kept. Thread-safe.
  bool record(std::int64_t costMwt);

  /// Appends a pre-stamped point under the same monotonicity filter —
  /// used when replaying a parsed report back into a log.
  bool recordAt(std::int64_t tsNs, std::int64_t costMwt);

  /// Snapshot of the curve so far, in record order (thread-safe copy).
  [[nodiscard]] std::vector<IncumbentPoint> points() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  void clear();

  /// Nanoseconds since this log was created (steady clock).
  [[nodiscard]] std::int64_t nowNs() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<IncumbentPoint> points_;
};

}  // namespace paws::obs
