// RunReport — one scheduling/simulation/campaign run, end to end, as a
// single JSON document.
//
// The report is the machine-readable counterpart of --obs-summary: problem
// identity (name + content hash), the options that shaped the run, the
// outcome (status, stop reason, exit class), a schedule digest, the full
// MetricsRegistry snapshot (counters, gauges, bucketed histograms) and the
// incumbent trajectory — the anytime time-vs-quality curve recorded by the
// schedulers through obs::IncumbentLog. `pawsc ... --report out.json`
// writes one; `pawsc trace summarize|diff|incumbents` reads them back.
//
// The JSON schema (version 1) is documented in docs/observability.md.
// Round-trip contract: parseRunReport(runReportToJson(r)).report == r for
// every report the toolchain writes — integers stay integers, doubles are
// printed with enough digits to reparse exactly, and map ordering is the
// registry's (sorted by name).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "base/hash.hpp"
#include "obs/incumbents.hpp"
#include "obs/metrics.hpp"

namespace paws::obs {

struct RunReport {
  static constexpr std::int64_t kSchemaVersion = 1;

  /// What ran: "schedule", "simulate" or "campaign".
  std::string kind = "schedule";

  // ----- problem identity ----------------------------------------------
  std::string problemName;
  /// FNV-1a 64 over the canonical .paws text (io::problemToText) — two
  /// reports with equal hashes scheduled the same problem.
  std::uint64_t problemHash = 0;
  std::uint64_t numTasks = 0;
  std::uint64_t numResources = 0;
  std::uint64_t numConstraints = 0;

  // ----- options that shaped the run -----------------------------------
  std::string scheduler;       ///< "pipeline", "exhaustive", "timing", ...
  std::int64_t trials = 1;
  std::int64_t jobs = 1;
  std::int64_t timeoutMs = -1; ///< -1 = unlimited

  // ----- outcome --------------------------------------------------------
  std::string status;               ///< toString(SchedStatus) / run status
  std::string stopReason = "none";  ///< guard::toString(StopReason)
  std::int64_t exitClass = 0;       ///< the pawsc exit code for this run
  bool valid = false;               ///< validator verdict on the schedule
  std::string message;

  // ----- schedule digest (when one was produced) -----------------------
  bool hasSchedule = false;
  std::int64_t finishTicks = 0;
  std::int64_t energyCostMwt = 0;  ///< Ec above Pmin, milliwatt-ticks
  std::int64_t peakPowerMw = 0;
  std::uint64_t scheduleBytes = 0; ///< serialized schedule size (determinism
                                   ///< witness: equal bytes = equal schedule)

  // ----- observability payload -----------------------------------------
  MetricsRegistry metrics;
  std::vector<IncumbentPoint> incumbents;  ///< monotone non-increasing cost

  // ----- volatile meta (normalized away in golden tests) ---------------
  std::int64_t createdUnixMs = 0;
  std::string host;

  /// Strips everything that varies between two runs of the same binary on
  /// the same input: creation time, host name, incumbent timestamps (costs
  /// stay), and every timing histogram (names ending in "_us" or "_ns").
  /// What remains is byte-stable for deterministic runs — the golden-report
  /// test compares normalized JSON.
  void normalizeVolatile();

  [[nodiscard]] bool operator==(const RunReport&) const = default;
};

/// FNV-1a 64-bit over `text` — the problem-content hash. The definition
/// lives in base/hash.hpp (shared with the schedule cache); this alias
/// keeps the historical obs:: spelling working for report call sites.
using paws::fnv1a64;

/// Stamps the volatile meta fields (wall clock, host name).
void stampVolatile(RunReport& report);

void writeRunReport(std::ostream& os, const RunReport& report);
[[nodiscard]] std::string runReportToJson(const RunReport& report);

struct ReportParseResult {
  bool ok = false;
  std::string error;
  RunReport report;
};

/// Parses a report document; unknown fields are ignored, missing fields
/// keep their defaults, a wrong top-level shape or newer schema fails.
[[nodiscard]] ReportParseResult parseRunReport(std::string_view jsonText);

/// Reads and parses a report file; IO failures land in `error`.
[[nodiscard]] ReportParseResult loadRunReport(const std::string& path);

}  // namespace paws::obs
