#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <map>
#include <sstream>

#include "obs/json.hpp"

namespace paws::obs {

namespace {

void printCompact(std::ostream& os, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  os << buf;
}

std::string summarizeReport(const RunReport& r) {
  std::ostringstream os;
  os << "run report (" << r.kind << ")\n";
  os << "  problem:   " << r.problemName << " — " << r.numTasks << " tasks, "
     << r.numResources << " resources, " << r.numConstraints
     << " constraints\n";
  os << "  options:   scheduler=" << r.scheduler << " trials=" << r.trials
     << " jobs=" << r.jobs;
  if (r.timeoutMs >= 0) os << " timeout_ms=" << r.timeoutMs;
  os << "\n";
  os << "  outcome:   " << r.status << " (exit " << r.exitClass
     << ", stop_reason=" << r.stopReason
     << (r.valid ? ", valid" : "") << ")\n";
  if (r.hasSchedule) {
    os << "  schedule:  finish=" << r.finishTicks
       << " ticks, Ec=" << r.energyCostMwt << " mWt, peak="
       << r.peakPowerMw << " mW, " << r.scheduleBytes << " bytes\n";
  }
  bool anyPhase = false;
  for (const auto& [name, h] : r.metrics.histograms()) {
    constexpr std::string_view kPrefix = "phase.";
    constexpr std::string_view kSuffix = ".wall_us";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    if (!anyPhase) os << "  phases:\n";
    anyPhase = true;
    os << "    " << std::left << std::setw(22)
       << name.substr(kPrefix.size(),
                      name.size() - kPrefix.size() - kSuffix.size())
       << std::right << std::setw(6) << h.count << " x " << std::setw(12);
    printCompact(os, h.sum);
    os << " us total\n";
  }
  os << "  metrics:   " << r.metrics.counters().size() << " counters, "
     << r.metrics.gauges().size() << " gauges, "
     << r.metrics.histograms().size() << " histograms\n";
  if (!r.incumbents.empty()) {
    os << "  incumbents: " << r.incumbents.size() << " points, first "
       << r.incumbents.front().costMwt << " mWt -> final "
       << r.incumbents.back().costMwt << " mWt\n";
  }
  return os.str();
}

std::string summarizeJsonl(std::string_view text,
                           const TraceSummaryOptions& options,
                           std::string& error) {
  std::map<std::string, std::uint64_t> byKind;
  // label -> (count, total dur) for phase spans.
  std::map<std::string, std::pair<std::uint64_t, std::int64_t>> phases;
  // task -> (backtracks, delays).
  std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>> taskHeat;
  std::uint64_t events = 0;
  std::size_t lineNo = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineNo;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    const json::ParseResult parsed = json::parse(line);
    if (!parsed.ok || !parsed.value.isObject()) {
      error = "line " + std::to_string(lineNo) + ": not a JSON object";
      return "";
    }
    ++events;
    const json::Value& e = parsed.value;
    std::string kind;
    if (const json::Value* f = e.find("kind")) kind = f->asString("?");
    ++byKind[kind];
    if (kind == "phase") {
      std::string label = "(unnamed)";
      if (const json::Value* f = e.find("label")) label = f->asString(label);
      auto& slot = phases[label];
      ++slot.first;
      if (const json::Value* f = e.find("dur_ns")) slot.second += f->asInt();
    } else if (kind == "backtrack" || kind == "delay") {
      if (const json::Value* f = e.find("task")) {
        auto& heat = taskHeat[f->asInt()];
        if (kind == "backtrack") {
          ++heat.first;
        } else {
          ++heat.second;
        }
      }
    }
  }
  if (events == 0) {
    // Nothing parsed at all: indistinguishable from a wrong file, and a
    // silent "0 events" digest would mask it.
    error = "no trace events found (empty input?)";
    return "";
  }

  std::ostringstream os;
  os << "trace: " << events << " events\n";
  if (!byKind.empty()) {
    os << "by kind:\n";
    for (const auto& [kind, count] : byKind) {
      os << "  " << std::left << std::setw(16) << kind << std::right
         << std::setw(10) << count << "\n";
    }
  }
  if (!phases.empty()) {
    os << "phases:\n";
    for (const auto& [label, slot] : phases) {
      os << "  " << std::left << std::setw(22) << label << std::right
         << std::setw(6) << slot.first << " x " << std::setw(12);
      printCompact(os, static_cast<double>(slot.second) / 1000.0);
      os << " us total\n";
    }
  }
  if (!taskHeat.empty()) {
    struct Hot {
      std::int64_t task;
      std::uint64_t backtracks;
      std::uint64_t delays;
    };
    std::vector<Hot> hot;
    hot.reserve(taskHeat.size());
    for (const auto& [task, heat] : taskHeat) {
      hot.push_back({task, heat.first, heat.second});
    }
    std::sort(hot.begin(), hot.end(), [](const Hot& a, const Hot& b) {
      const std::uint64_t ta = a.backtracks + a.delays;
      const std::uint64_t tb = b.backtracks + b.delays;
      return ta != tb ? ta > tb : a.task < b.task;
    });
    const std::size_t k = std::min(options.topK, hot.size());
    os << "hottest tasks (backtracks + delays, top " << k << "):\n";
    for (std::size_t i = 0; i < k; ++i) {
      os << "  task " << std::setw(5) << hot[i].task << "  "
         << hot[i].backtracks << " backtracks, " << hot[i].delays
         << " delays\n";
    }
  }
  return os.str();
}

}  // namespace

TraceSummary summarizeTraceText(std::string_view text,
                                const TraceSummaryOptions& options) {
  TraceSummary out;
  // A run report is one multi-line JSON object with a "schema" member; a
  // JSONL trace is one object *per line*. Try the report reading first —
  // a JSONL file never parses as a single document (trailing lines).
  const json::ParseResult whole = json::parse(text);
  if (whole.ok && whole.value.isObject() &&
      whole.value.find("schema") != nullptr) {
    const ReportParseResult report = parseRunReport(text);
    if (!report.ok) {
      out.error = report.error;
      return out;
    }
    out.ok = true;
    out.text = summarizeReport(report.report);
    return out;
  }
  std::string error;
  std::string rendered = summarizeJsonl(text, options, error);
  if (!error.empty()) {
    out.error = error;
    return out;
  }
  out.ok = true;
  out.text = rendered;
  return out;
}

bool isDeterministicMetric(std::string_view name) {
  if (name.rfind("schedule.", 0) == 0) return true;
  if (name.rfind("problem.", 0) == 0) return true;
  // The single-threaded pipeline counters (sched/result.hpp's exportStats
  // names) do not depend on --jobs or wall clock.
  if (name.rfind("search.", 0) == 0) return true;
  return false;
}

namespace {

/// Flattens a report into name -> value rows for the diff: the scalar
/// schedule/problem digest plus every counter and gauge. Histograms are
/// compared by count only (their contents are timing).
std::map<std::string, double> flatten(const RunReport& r) {
  std::map<std::string, double> out;
  out["problem.tasks"] = static_cast<double>(r.numTasks);
  out["problem.resources"] = static_cast<double>(r.numResources);
  out["problem.constraints"] = static_cast<double>(r.numConstraints);
  if (r.hasSchedule) {
    out["schedule.finish_ticks"] = static_cast<double>(r.finishTicks);
    out["schedule.energy_cost_mwt"] = static_cast<double>(r.energyCostMwt);
    out["schedule.peak_power_mw"] = static_cast<double>(r.peakPowerMw);
    out["schedule.bytes"] = static_cast<double>(r.scheduleBytes);
  }
  for (const auto& [name, v] : r.metrics.counters()) {
    out[name] = static_cast<double>(v);
  }
  for (const auto& [name, v] : r.metrics.gauges()) out[name] = v;
  for (const auto& [name, h] : r.metrics.histograms()) {
    out[name + ".count"] = static_cast<double>(h.count);
  }
  return out;
}

}  // namespace

ReportDiff diffReports(const RunReport& a, const RunReport& b,
                       const ReportDiffOptions& options) {
  ReportDiff diff;
  diff.comparableProblems = a.problemHash == b.problemHash;
  const std::map<std::string, double> fa = flatten(a);
  const std::map<std::string, double> fb = flatten(b);

  auto ia = fa.begin();
  auto ib = fb.begin();
  while (ia != fa.end() || ib != fb.end()) {
    ReportDiff::Entry entry;
    if (ib == fb.end() || (ia != fa.end() && ia->first < ib->first)) {
      entry.name = ia->first;
      entry.a = ia->second;
      entry.onlyInA = true;
      ++ia;
    } else if (ia == fa.end() || ib->first < ia->first) {
      entry.name = ib->first;
      entry.b = ib->second;
      entry.onlyInB = true;
      ++ib;
    } else {
      entry.name = ia->first;
      entry.a = ia->second;
      entry.b = ib->second;
      ++ia;
      ++ib;
    }
    entry.deterministic = isDeterministicMetric(entry.name);
    if (entry.onlyInA || entry.onlyInB) {
      entry.flagged = entry.deterministic;
    } else if (entry.deterministic) {
      entry.flagged = entry.a != entry.b;
    } else {
      const double denom = std::max(std::fabs(entry.a), 1.0);
      entry.flagged = std::fabs(entry.b - entry.a) / denom >
                      options.relTolerance;
    }
    if (entry.flagged) {
      if (entry.deterministic) {
        ++diff.deterministicMismatches;
      } else {
        ++diff.flaggedCount;
      }
    }
    diff.entries.push_back(std::move(entry));
  }
  return diff;
}

std::string renderReportDiff(const ReportDiff& diff, std::string_view labelA,
                             std::string_view labelB) {
  std::ostringstream os;
  os << "diff: A=" << labelA << " B=" << labelB << "\n";
  if (!diff.comparableProblems) {
    os << "warning: problem hashes differ — the reports describe different "
          "inputs\n";
  }
  os << std::left << std::setw(36) << "metric" << std::right << std::setw(14)
     << "A" << std::setw(14) << "B" << std::setw(14) << "delta"
     << "  class\n";
  for (const ReportDiff::Entry& e : diff.entries) {
    // Quiet rows (equal, not flagged) are elided unless deterministic —
    // determinism agreements are the point of the comparison.
    if (!e.flagged && !e.deterministic && e.a == e.b) continue;
    os << std::left << std::setw(36) << e.name << std::right << std::setw(14);
    if (e.onlyInB) {
      os << "-";
    } else {
      printCompact(os, e.a);
    }
    os << std::setw(14);
    if (e.onlyInA) {
      os << "-";
    } else {
      printCompact(os, e.b);
    }
    os << std::setw(14);
    if (e.onlyInA || e.onlyInB) {
      os << "n/a";
    } else {
      printCompact(os, e.b - e.a);
    }
    os << "  " << (e.deterministic ? "deterministic" : "noisy");
    if (e.flagged) os << (e.deterministic ? " MISMATCH" : " (over tolerance)");
    os << "\n";
  }
  os << "summary: " << diff.deterministicMismatches
     << " deterministic mismatches, " << diff.flaggedCount
     << " noisy metrics over tolerance\n";
  return os.str();
}

std::string renderIncumbents(const RunReport& report, bool csv) {
  std::ostringstream os;
  if (csv) {
    os << "ts_ns,cost_mwt\n";
    for (const IncumbentPoint& p : report.incumbents) {
      os << p.tsNs << "," << p.costMwt << "\n";
    }
    return os.str();
  }
  os << "incumbent trajectory (" << report.incumbents.size() << " points)\n";
  if (report.incumbents.empty()) return os.str();
  os << std::right << std::setw(14) << "t (ms)" << std::setw(16) << "cost (mWt)"
     << std::setw(12) << "improved\n";
  std::int64_t prev = 0;
  bool first = true;
  for (const IncumbentPoint& p : report.incumbents) {
    os << std::setw(14) << std::fixed << std::setprecision(3)
       << static_cast<double>(p.tsNs) / 1e6 << std::defaultfloat
       << std::setw(16) << p.costMwt << std::setw(12);
    if (first) {
      os << "-";
    } else {
      os << (prev - p.costMwt);
    }
    os << "\n";
    prev = p.costMwt;
    first = false;
  }
  return os.str();
}

}  // namespace paws::obs
