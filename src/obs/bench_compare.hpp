// Bench regression gate: compares two BENCH_results.json files (the
// format bench/bench_report.hpp writes) and classifies every difference.
//
// Two classes of check, mirroring what a committed baseline can promise:
//
//   * exact counters — counters named in `exactCounters` are determinism
//     witnesses (serialized schedule bytes, single-threaded longest-path
//     run counts). Any mismatch, and any benchmark or suite present in the
//     baseline but missing from the current run, is a HARD regression:
//     tools/bench_diff exits non-zero.
//   * wall time — per-iteration wall_ns is machine- and load-dependent, so
//     slowdowns beyond `wallTolerance` are soft findings: warnings by
//     default, hard only under --fail-on-wall (for same-machine A/B runs).
//
// Benchmarks present only in the current run are informational (new
// coverage is never a regression).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace paws::obs {

struct BenchCompareOptions {
  /// Relative wall_ns slowdown beyond which a soft finding is raised
  /// (0.5 = current may take up to 1.5x the baseline).
  double wallTolerance = 0.5;
  /// Promote wall-time findings to hard regressions.
  bool failOnWall = false;
  /// Counter names that must match exactly between baseline and current.
  /// nodes_explored and the pruned_* counters come from the serial pruned
  /// exhaustive search, whose visit set is machine-independent; the
  /// cache_* traffic counters count resolver decisions, which are a pure
  /// function of the request sequence.
  /// delivered_steps / survival_permille / mode_escalations come from
  /// fault campaigns, which are byte-exact for any worker count.
  std::vector<std::string> exactCounters = {
      "schedule_bytes", "lp_runs",         "nodes_explored",
      "pruned_dominance", "pruned_symmetry", "pruned_bound",
      "cache_hits",       "cache_misses",    "delivered_steps",
      "survival_permille", "mode_escalations"};
};

struct BenchComparison {
  struct Finding {
    std::string suite;
    std::string bench;    ///< empty for suite-level findings
    std::string metric;   ///< counter name, "wall_ns", or "presence"
    double baseline = 0;
    double current = 0;
    bool hard = false;
    std::string note;
  };
  std::vector<Finding> findings;  ///< hard first, then soft, stable order
  std::size_t hardCount = 0;
  std::size_t softCount = 0;
  std::size_t benchesCompared = 0;
  std::string error;  ///< non-empty: one input failed to parse (hard)

  [[nodiscard]] bool ok() const { return hardCount == 0 && error.empty(); }
};

/// Compares two BENCH_results.json documents (baseline, current) passed as
/// text. Parse failures land in `error` and count as a failed gate.
[[nodiscard]] BenchComparison compareBenchResults(
    std::string_view baselineJson, std::string_view currentJson,
    const BenchCompareOptions& options = {});

[[nodiscard]] std::string renderBenchComparison(
    const BenchComparison& comparison, std::string_view baselineLabel,
    std::string_view currentLabel);

}  // namespace paws::obs
