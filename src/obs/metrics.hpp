// MetricsRegistry — named counters, gauges and histograms for search
// effort and wall-clock accounting.
//
// This subsumes the fixed-field SchedulerStats struct (which stays as a
// thin compatibility view; see sched/result.hpp's exportStats /
// statsFromMetrics): schedulers keep their cheap plain-integer counters on
// the hot path, and full runs export them into a registry under stable
// names, alongside metrics the struct cannot hold — phase wall times,
// per-run longest-path durations, executor outcomes.
//
// Histograms are *bucketed*: besides count/sum/min/max every observation
// lands in one of 64 log2 buckets (bucket 0 = values below 1, bucket i =
// [2^(i-1), 2^i), bucket 63 = everything from 2^62 up), which is enough to
// estimate p50/p90/p99 for wall-time and effort distributions at a fixed
// 512-byte footprint per metric, and merges exactly (bucket-wise sums)
// when per-run registries are folded together.
//
// Naming convention (documented in docs/observability.md):
//   search.*    scheduler decision counters (search.backtracks, ...)
//   phase.*     wall-clock histograms, microseconds (phase.timing.wall_us)
//   executor.*  runtime-executor counters/gauges
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace paws::obs {

class MetricsRegistry {
 public:
  /// Monotonic counter: creates at 0 on first touch.
  void add(std::string_view name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// Last-write-wins gauge.
  void set(std::string_view name, double value);
  [[nodiscard]] double gauge(std::string_view name) const;

  /// Streaming histogram: tracks count / sum / min / max plus 64 log2
  /// buckets for quantile estimates.
  void observe(std::string_view name, double value);

  struct HistogramSummary {
    static constexpr std::size_t kNumBuckets = 64;

    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    /// buckets[0] counts values < 1 (including zero and negatives);
    /// buckets[i] (1 <= i <= 62) counts values in [2^(i-1), 2^i);
    /// buckets[63] counts values >= 2^62.
    std::array<std::uint64_t, kNumBuckets> buckets{};

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /// Quantile estimate from the log2 buckets (q in [0, 1]): locates the
    /// bucket holding the q-th ranked observation and interpolates
    /// linearly inside it, clamped to the exact [min, max] envelope. The
    /// estimate is exact at the envelope (q=0 -> min, q=1 -> max) and
    /// bucket-resolution (a factor of 2) in between.
    [[nodiscard]] double quantile(double q) const;

    /// Folds `other` in: counts and buckets add, min/max widen. An empty
    /// side contributes nothing — in particular it never clobbers the
    /// other side's min/max with its default zeros.
    void merge(const HistogramSummary& other);

    /// Records one value (the registry's observe() forwards here).
    void observe(double value);

    /// The log2 bucket `value` falls into.
    [[nodiscard]] static std::size_t bucketIndex(double value);
    /// Inclusive-exclusive bounds of bucket i; bucket 63's upper bound is
    /// +infinity.
    [[nodiscard]] static double bucketLowerBound(std::size_t i);
    [[nodiscard]] static double bucketUpperBound(std::size_t i);

    [[nodiscard]] bool operator==(const HistogramSummary&) const = default;
  };
  [[nodiscard]] HistogramSummary histogram(std::string_view name) const;

  /// Installs a complete summary under `name`, replacing any existing one —
  /// how the run-report parser reconstructs a registry from JSON.
  void setHistogram(std::string_view name, const HistogramSummary& summary);

  [[nodiscard]] bool has(std::string_view name) const;
  /// Total number of distinct metric names across all three families.
  [[nodiscard]] std::size_t size() const;

  /// Read-only views over the three families, sorted by name — the JSON /
  /// OpenMetrics exporters and the run-report builder iterate these.
  using CounterMap = std::map<std::string, std::uint64_t, std::less<>>;
  using GaugeMap = std::map<std::string, double, std::less<>>;
  using HistogramMap = std::map<std::string, HistogramSummary, std::less<>>;
  [[nodiscard]] const CounterMap& counters() const { return counters_; }
  [[nodiscard]] const GaugeMap& gauges() const { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const { return histograms_; }

  /// Folds every metric of `other` into this registry (counters add,
  /// gauges overwrite, histograms merge bucket-wise) — used by benches
  /// aggregating per-run registries and by pawsd-style per-request scrapes.
  MetricsRegistry& operator+=(const MetricsRegistry& other);

  /// Exact structural equality (used by the run-report round-trip tests).
  [[nodiscard]] bool operator==(const MetricsRegistry&) const = default;

  /// CSV export, one row per metric, sorted by name:
  ///   name,kind,value,count,sum,min,max,mean,p50,p90,p99
  /// Counters/gauges fill `value`; histograms fill the summary columns.
  void writeCsv(std::ostream& os) const;
  [[nodiscard]] std::string toCsv() const;

  /// Human-readable aligned table (the CLI's --obs-summary body).
  [[nodiscard]] std::string renderTable() const;

  void clear();

 private:
  // Ordered maps: export order is deterministic and sorted by name.
  // std::less<> enables lookups by string_view without allocating.
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

}  // namespace paws::obs
