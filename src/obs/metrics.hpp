// MetricsRegistry — named counters, gauges and histograms for search
// effort and wall-clock accounting.
//
// This subsumes the fixed-field SchedulerStats struct (which stays as a
// thin compatibility view; see sched/result.hpp's exportStats /
// statsFromMetrics): schedulers keep their cheap plain-integer counters on
// the hot path, and full runs export them into a registry under stable
// names, alongside metrics the struct cannot hold — phase wall times,
// per-run longest-path durations, executor outcomes.
//
// Naming convention (documented in docs/observability.md):
//   search.*    scheduler decision counters (search.backtracks, ...)
//   phase.*     wall-clock histograms, microseconds (phase.timing.wall_us)
//   executor.*  runtime-executor counters/gauges
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace paws::obs {

class MetricsRegistry {
 public:
  /// Monotonic counter: creates at 0 on first touch.
  void add(std::string_view name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// Last-write-wins gauge.
  void set(std::string_view name, double value);
  [[nodiscard]] double gauge(std::string_view name) const;

  /// Streaming histogram: tracks count / sum / min / max (no buckets —
  /// enough for phase timings and per-run effort distributions).
  void observe(std::string_view name, double value);

  struct HistogramSummary {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] HistogramSummary histogram(std::string_view name) const;

  [[nodiscard]] bool has(std::string_view name) const;
  /// Total number of distinct metric names across all three families.
  [[nodiscard]] std::size_t size() const;

  /// Folds every metric of `other` into this registry (counters add,
  /// gauges overwrite, histograms merge) — used by benches aggregating
  /// per-run registries.
  MetricsRegistry& operator+=(const MetricsRegistry& other);

  /// CSV export, one row per metric, sorted by name:
  ///   name,kind,value,count,sum,min,max,mean
  /// Counters/gauges fill `value`; histograms fill the summary columns.
  void writeCsv(std::ostream& os) const;
  [[nodiscard]] std::string toCsv() const;

  /// Human-readable aligned table (the CLI's --obs-summary body).
  [[nodiscard]] std::string renderTable() const;

  void clear();

 private:
  // Ordered maps: export order is deterministic and sorted by name.
  // std::less<> enables lookups by string_view without allocating.
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramSummary, std::less<>> histograms_;
};

}  // namespace paws::obs
