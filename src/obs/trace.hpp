// Search-level tracing: typed events describing what the schedulers *did*
// (candidates tried, backtracks, delay/lock decisions, min-power moves,
// longest-path runs), each stamped with a steady_clock time so the search
// can be replayed on a wall-clock timeline in chrome://tracing.
//
// This traces the *search*, not the schedule — io/writer.cpp's
// writeChromeTrace renders the produced schedule; obs/export.hpp renders
// the effort that produced it.
//
// Cost model: every instrumentation site goes through the PAWS_TRACE_*
// macros below, which compile to a single null-pointer check when tracing
// is compiled in (the default) and to nothing when the CMake option
// PAWS_TRACE is OFF (PAWS_TRACE_ENABLED=0). The sink itself is a
// single-writer append-only vector — the schedulers are single-threaded,
// so "lock-free-enough" means no locks at all, just no shared mutation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include <chrono>

namespace paws::obs {

/// What happened. Instants mark one decision; spans carry a duration.
enum class TraceEventKind : std::uint8_t {
  kPhase,         ///< span: a named pipeline phase (see PhaseTimer)
  kLongestPath,   ///< span: one Bellman–Ford longest-path run
  kCandidate,     ///< instant: timing scheduler tried a candidate vertex
  kBacktrack,     ///< instant: timing candidate choice undone
  kDelay,         ///< instant: max-power delay decision
  kLock,          ///< instant: max-power lock decision
  kRecursion,     ///< instant: max-power reschedule recursion entered
  kMoveAccepted,  ///< instant: min-power move kept (rho improved)
  kMoveRejected,  ///< instant: min-power move rolled back
  kScanPass,      ///< instant: min-power scan pass started
  kIteration,     ///< span: one runtime-executor iteration
  kServeShed,     ///< instant: pawsd refused a request (overload/drain)
  kServeMode,     ///< instant: pawsd overload ladder changed rung
  kServeDrain,    ///< span: pawsd graceful-drain window
};

const char* toString(TraceEventKind kind);

/// POD event record. Payload fields are kind-specific (documented in
/// docs/observability.md); unused fields stay at their defaults. `label`
/// must point at static-storage text (phase names, literals) — events are
/// recorded on hot paths and never own memory.
struct TraceEvent {
  static constexpr std::uint32_t kNoTask = 0xffffffffu;

  TraceEventKind kind = TraceEventKind::kPhase;
  std::int64_t tsNs = 0;       ///< steady_clock offset from the sink's epoch
  std::int64_t durNs = 0;      ///< spans only; 0 for instants
  std::uint32_t task = kNoTask;  ///< TaskId::value() when a task is involved
  std::int64_t at = 0;         ///< schedule-time payload (ticks)
  std::int64_t value = 0;      ///< kind-specific magnitude
  std::uint32_t depth = 0;     ///< recursion depth / pass / trial index
  const char* label = "";      ///< static-storage annotation
};

/// Append-only, single-writer event buffer with a private steady_clock
/// epoch. Borrowed by every instrumented component via ObsContext.
///
/// Memory is bounded: once `maxEvents` events are held, further records
/// are counted in droppedEvents() and discarded, so an hour-long
/// exhaustive search or campaign cannot grow the sink without limit. The
/// default cap (2^20 events, ~56 MB) is generous — a full satellite-pass
/// pipeline records a few thousand events — and tunable per sink.
class TraceSink {
 public:
  /// Default cap: 2^20 events. Each TraceEvent is 56 bytes, so a full
  /// sink tops out near 56 MB.
  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

  explicit TraceSink(std::size_t maxEvents = kDefaultMaxEvents)
      : epoch_(std::chrono::steady_clock::now()), maxEvents_(maxEvents) {
    events_.reserve(std::min<std::size_t>(1024, maxEvents));
  }

  /// Nanoseconds since this sink was created (steady clock).
  [[nodiscard]] std::int64_t nowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records a pre-built event verbatim (spans stamp their own tsNs).
  void record(const TraceEvent& event) {
    if (admit()) events_.push_back(event);
  }

  /// Records an instant event stamped with the current time.
  void instant(TraceEventKind kind, std::uint32_t task = TraceEvent::kNoTask,
               std::int64_t at = 0, std::int64_t value = 0,
               std::uint32_t depth = 0, const char* label = "") {
    if (!admit()) return;
    TraceEvent e;
    e.kind = kind;
    e.tsNs = nowNs();
    e.task = task;
    e.at = at;
    e.value = value;
    e.depth = depth;
    e.label = label;
    events_.push_back(e);
  }

  /// Records a completed span [startNs, startNs + durNs).
  void span(TraceEventKind kind, std::int64_t startNs, std::int64_t durNs,
            const char* label, std::uint32_t depth = 0,
            std::int64_t value = 0) {
    if (!admit()) return;
    TraceEvent e;
    e.kind = kind;
    e.tsNs = startNs;
    e.durNs = durNs;
    e.depth = depth;
    e.value = value;
    e.label = label;
    events_.push_back(e);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Events refused because the cap was reached.
  [[nodiscard]] std::uint64_t droppedEvents() const { return dropped_; }
  [[nodiscard]] std::size_t maxEvents() const { return maxEvents_; }
  /// Adjusts the cap; events already held are kept even if over the new
  /// cap (only future records are refused).
  void setMaxEvents(std::size_t maxEvents) { maxEvents_ = maxEvents; }

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  [[nodiscard]] bool admit() {
    if (events_.size() < maxEvents_) return true;
    ++dropped_;
    return false;
  }

  std::chrono::steady_clock::time_point epoch_;
  std::size_t maxEvents_;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace paws::obs

// Compile-time switch: CMake -DPAWS_TRACE=OFF defines PAWS_TRACE_ENABLED=0
// and every macro below vanishes, leaving the seed-identical hot path.
#ifndef PAWS_TRACE_ENABLED
#define PAWS_TRACE_ENABLED 1
#endif

#if PAWS_TRACE_ENABLED
/// Instant event through a possibly-null TraceSink*.
#define PAWS_TRACE_INSTANT(sink, ...)                       \
  do {                                                      \
    if ((sink) != nullptr) (sink)->instant(__VA_ARGS__);    \
  } while (0)
/// Completed span through a possibly-null TraceSink*.
#define PAWS_TRACE_SPAN(sink, ...)                          \
  do {                                                      \
    if ((sink) != nullptr) (sink)->span(__VA_ARGS__);       \
  } while (0)
#else
#define PAWS_TRACE_INSTANT(sink, ...) \
  do {                                \
  } while (0)
#define PAWS_TRACE_SPAN(sink, ...) \
  do {                             \
  } while (0)
#endif
