#include "obs/export.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/incumbents.hpp"

namespace paws::obs {

namespace {

/// chrome://tracing groups events by (pid, tid); we use one pid and one
/// row per subsystem so the search reads like a profiler timeline.
struct Row {
  int tid;
  const char* name;
};

Row rowOf(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPhase:
      return {1, "phases"};
    case TraceEventKind::kLongestPath:
      return {2, "longest-path engine"};
    case TraceEventKind::kCandidate:
    case TraceEventKind::kBacktrack:
      return {3, "timing search"};
    case TraceEventKind::kDelay:
    case TraceEventKind::kLock:
    case TraceEventKind::kRecursion:
      return {4, "max-power decisions"};
    case TraceEventKind::kMoveAccepted:
    case TraceEventKind::kMoveRejected:
    case TraceEventKind::kScanPass:
      return {5, "min-power moves"};
    case TraceEventKind::kIteration:
      return {6, "runtime executor"};
    case TraceEventKind::kServeShed:
    case TraceEventKind::kServeMode:
    case TraceEventKind::kServeDrain:
      return {7, "service"};
  }
  return {8, "other"};
}

/// Microseconds with nanosecond precision — chrome's ts unit is us.
void printUs(std::ostream& os, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  os << buf;
}

void printArgs(std::ostream& os, const TraceEvent& e) {
  os << "{\"depth\":" << e.depth;
  if (e.task != TraceEvent::kNoTask) os << ",\"task\":" << e.task;
  os << ",\"at\":" << e.at << ",\"value\":" << e.value;
  if (e.label[0] != '\0') os << ",\"label\":\"" << e.label << "\"";
  os << "}";
}

}  // namespace

void writeSearchTraceJson(std::ostream& os, const TraceSink& sink) {
  os << "{\"traceEvents\":[";
  bool first = true;
  std::map<int, const char*> rows;
  for (const TraceEvent& e : sink.events()) {
    const Row row = rowOf(e.kind);
    rows.emplace(row.tid, row.name);
    if (!first) os << ',';
    first = false;
    const bool isSpan = e.durNs > 0 || e.kind == TraceEventKind::kPhase ||
                        e.kind == TraceEventKind::kLongestPath ||
                        e.kind == TraceEventKind::kIteration;
    const char* name = (e.kind == TraceEventKind::kPhase && e.label[0] != '\0')
                           ? e.label
                           : toString(e.kind);
    os << "{\"name\":\"" << name << "\",\"cat\":\"search\",\"ph\":\""
       << (isSpan ? 'X' : 'i') << "\",\"pid\":1,\"tid\":" << row.tid
       << ",\"ts\":";
    printUs(os, e.tsNs);
    if (isSpan) {
      os << ",\"dur\":";
      printUs(os, e.durNs);
    } else {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",\"args\":";
    printArgs(os, e);
    os << "}";
  }
  // Row-name metadata, mirroring writeChromeTrace's thread_name records.
  for (const auto& [tid, name] : rows) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << name << "\"}}";
  }
  os << "]}";
}

std::string searchTraceToJson(const TraceSink& sink) {
  std::ostringstream os;
  writeSearchTraceJson(os, sink);
  return os.str();
}

void writeSearchTraceJsonl(std::ostream& os, const TraceSink& sink) {
  for (const TraceEvent& e : sink.events()) {
    os << "{\"kind\":\"" << toString(e.kind) << "\",\"ts_ns\":" << e.tsNs
       << ",\"dur_ns\":" << e.durNs;
    if (e.task != TraceEvent::kNoTask) os << ",\"task\":" << e.task;
    os << ",\"at\":" << e.at << ",\"value\":" << e.value
       << ",\"depth\":" << e.depth;
    if (e.label[0] != '\0') os << ",\"label\":\"" << e.label << "\"";
    os << "}\n";
  }
}

std::string searchTraceToJsonl(const TraceSink& sink) {
  std::ostringstream os;
  writeSearchTraceJsonl(os, sink);
  return os.str();
}

std::string renderObsSummary(const MetricsRegistry& metrics,
                             const TraceSink* sink,
                             const ObsSummaryExtras& extras) {
  std::ostringstream os;
  os << metrics.renderTable();
  if (sink != nullptr && !sink->empty()) {
    std::array<std::size_t, 16> byKind{};
    for (const TraceEvent& e : sink->events()) {
      ++byKind[static_cast<std::size_t>(e.kind) % byKind.size()];
    }
    os << "trace (" << sink->size() << " events):\n";
    for (std::size_t k = 0; k < byKind.size(); ++k) {
      if (byKind[k] == 0) continue;
      os << "  " << toString(static_cast<TraceEventKind>(k)) << ": "
         << byKind[k] << "\n";
    }
    if (sink->droppedEvents() > 0) {
      os << "  dropped (cap " << sink->maxEvents()
         << " events): " << sink->droppedEvents() << "\n";
    }
  }
  if (!extras.stopReason.empty() && extras.stopReason != "none") {
    os << "guard: stopped early (" << extras.stopReason << ")\n";
  }
  if (extras.incumbents != nullptr && !extras.incumbents->empty()) {
    const auto points = extras.incumbents->points();
    os << "incumbents: " << points.size() << " improvement"
       << (points.size() == 1 ? "" : "s") << ", final cost "
       << points.back().costMwt << " mWt\n";
  }
  return os.str();
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's
/// dotted names map dots (and anything else illegal) to underscores.
std::string sanitizeMetricName(std::string_view prefix,
                               std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  const auto append = [&out](std::string_view part) {
    for (const char c : part) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9' && !out.empty()) || c == '_' ||
                      c == ':';
      out.push_back(ok ? c : '_');
    }
  };
  append(prefix);
  if (!out.empty() && !name.empty()) out.push_back('_');
  append(name);
  return out;
}

/// `le` labels and sample values: integral doubles print without a
/// fraction, everything else with enough digits to reparse.
void printOmValue(std::ostream& os, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  os << buf;
}

}  // namespace

void writeOpenMetrics(std::ostream& os, const MetricsRegistry& metrics,
                      std::string_view prefix) {
  for (const auto& [name, value] : metrics.counters()) {
    const std::string om = sanitizeMetricName(prefix, name);
    os << "# TYPE " << om << " counter\n";
    os << om << "_total " << value << "\n";
  }
  for (const auto& [name, value] : metrics.gauges()) {
    const std::string om = sanitizeMetricName(prefix, name);
    os << "# TYPE " << om << " gauge\n";
    os << om << " ";
    printOmValue(os, value);
    os << "\n";
  }
  using HistogramSummary = MetricsRegistry::HistogramSummary;
  for (const auto& [name, h] : metrics.histograms()) {
    const std::string om = sanitizeMetricName(prefix, name);
    os << "# TYPE " << om << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i + 1 < HistogramSummary::kNumBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      os << om << "_bucket{le=\"";
      printOmValue(os, HistogramSummary::bucketUpperBound(i));
      os << "\"} " << cumulative << "\n";
    }
    cumulative += h.buckets[HistogramSummary::kNumBuckets - 1];
    if (cumulative < h.count) cumulative = h.count;  // defensive
    os << om << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << om << "_sum ";
    printOmValue(os, h.sum);
    os << "\n" << om << "_count " << h.count << "\n";
  }
  os << "# EOF\n";
}

std::string toOpenMetrics(const MetricsRegistry& metrics,
                          std::string_view prefix) {
  std::ostringstream os;
  writeOpenMetrics(os, metrics, prefix);
  return os.str();
}

}  // namespace paws::obs
