#include "obs/export.hpp"

#include <array>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

namespace paws::obs {

namespace {

/// chrome://tracing groups events by (pid, tid); we use one pid and one
/// row per subsystem so the search reads like a profiler timeline.
struct Row {
  int tid;
  const char* name;
};

Row rowOf(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPhase:
      return {1, "phases"};
    case TraceEventKind::kLongestPath:
      return {2, "longest-path engine"};
    case TraceEventKind::kCandidate:
    case TraceEventKind::kBacktrack:
      return {3, "timing search"};
    case TraceEventKind::kDelay:
    case TraceEventKind::kLock:
    case TraceEventKind::kRecursion:
      return {4, "max-power decisions"};
    case TraceEventKind::kMoveAccepted:
    case TraceEventKind::kMoveRejected:
    case TraceEventKind::kScanPass:
      return {5, "min-power moves"};
    case TraceEventKind::kIteration:
      return {6, "runtime executor"};
  }
  return {7, "other"};
}

/// Microseconds with nanosecond precision — chrome's ts unit is us.
void printUs(std::ostream& os, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  os << buf;
}

void printArgs(std::ostream& os, const TraceEvent& e) {
  os << "{\"depth\":" << e.depth;
  if (e.task != TraceEvent::kNoTask) os << ",\"task\":" << e.task;
  os << ",\"at\":" << e.at << ",\"value\":" << e.value;
  if (e.label[0] != '\0') os << ",\"label\":\"" << e.label << "\"";
  os << "}";
}

}  // namespace

void writeSearchTraceJson(std::ostream& os, const TraceSink& sink) {
  os << "{\"traceEvents\":[";
  bool first = true;
  std::map<int, const char*> rows;
  for (const TraceEvent& e : sink.events()) {
    const Row row = rowOf(e.kind);
    rows.emplace(row.tid, row.name);
    if (!first) os << ',';
    first = false;
    const bool isSpan = e.durNs > 0 || e.kind == TraceEventKind::kPhase ||
                        e.kind == TraceEventKind::kLongestPath ||
                        e.kind == TraceEventKind::kIteration;
    const char* name = (e.kind == TraceEventKind::kPhase && e.label[0] != '\0')
                           ? e.label
                           : toString(e.kind);
    os << "{\"name\":\"" << name << "\",\"cat\":\"search\",\"ph\":\""
       << (isSpan ? 'X' : 'i') << "\",\"pid\":1,\"tid\":" << row.tid
       << ",\"ts\":";
    printUs(os, e.tsNs);
    if (isSpan) {
      os << ",\"dur\":";
      printUs(os, e.durNs);
    } else {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",\"args\":";
    printArgs(os, e);
    os << "}";
  }
  // Row-name metadata, mirroring writeChromeTrace's thread_name records.
  for (const auto& [tid, name] : rows) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << name << "\"}}";
  }
  os << "]}";
}

std::string searchTraceToJson(const TraceSink& sink) {
  std::ostringstream os;
  writeSearchTraceJson(os, sink);
  return os.str();
}

void writeSearchTraceJsonl(std::ostream& os, const TraceSink& sink) {
  for (const TraceEvent& e : sink.events()) {
    os << "{\"kind\":\"" << toString(e.kind) << "\",\"ts_ns\":" << e.tsNs
       << ",\"dur_ns\":" << e.durNs;
    if (e.task != TraceEvent::kNoTask) os << ",\"task\":" << e.task;
    os << ",\"at\":" << e.at << ",\"value\":" << e.value
       << ",\"depth\":" << e.depth;
    if (e.label[0] != '\0') os << ",\"label\":\"" << e.label << "\"";
    os << "}\n";
  }
}

std::string searchTraceToJsonl(const TraceSink& sink) {
  std::ostringstream os;
  writeSearchTraceJsonl(os, sink);
  return os.str();
}

std::string renderObsSummary(const MetricsRegistry& metrics,
                             const TraceSink* sink) {
  std::ostringstream os;
  os << metrics.renderTable();
  if (sink != nullptr && !sink->empty()) {
    std::array<std::size_t, 16> byKind{};
    for (const TraceEvent& e : sink->events()) {
      ++byKind[static_cast<std::size_t>(e.kind) % byKind.size()];
    }
    os << "trace (" << sink->size() << " events):\n";
    for (std::size_t k = 0; k < byKind.size(); ++k) {
      if (byKind[k] == 0) continue;
      os << "  " << toString(static_cast<TraceEventKind>(k)) << ": "
         << byKind[k] << "\n";
    }
  }
  return os.str();
}

}  // namespace paws::obs
