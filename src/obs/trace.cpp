#include "obs/trace.hpp"

namespace paws::obs {

const char* toString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPhase:
      return "phase";
    case TraceEventKind::kLongestPath:
      return "longest-path";
    case TraceEventKind::kCandidate:
      return "candidate";
    case TraceEventKind::kBacktrack:
      return "backtrack";
    case TraceEventKind::kDelay:
      return "delay";
    case TraceEventKind::kLock:
      return "lock";
    case TraceEventKind::kRecursion:
      return "recursion";
    case TraceEventKind::kMoveAccepted:
      return "move-accepted";
    case TraceEventKind::kMoveRejected:
      return "move-rejected";
    case TraceEventKind::kScanPass:
      return "scan-pass";
    case TraceEventKind::kIteration:
      return "iteration";
    case TraceEventKind::kServeShed:
      return "serve-shed";
    case TraceEventKind::kServeMode:
      return "serve-mode";
    case TraceEventKind::kServeDrain:
      return "serve-drain";
  }
  return "?";
}

}  // namespace paws::obs
