// Schedule save/load in .paws-style syntax — the persistence half of the
// runtime deployment story: schedules are computed offline, written next
// to the problem file, and loaded by the flight software into a
// ScheduleLibrary.
//
//   schedule "label" of "problem_name" {
//     at heat_wheel1 0
//     at hazard1 0
//     ...
//   }
//
// Every task of the problem must be assigned exactly once; unknown task
// names and duplicates are parse errors.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "io/parser.hpp"
#include "sched/schedule.hpp"

namespace paws::io {

struct ScheduleParseResult {
  std::optional<Schedule> schedule;  // bound to the problem passed in
  std::string label;
  std::string problemName;  // as written in the file
  std::vector<ParseError> errors;
  [[nodiscard]] bool ok() const { return schedule.has_value(); }
};

/// Parses a schedule document against `problem` (which provides task names
/// and delays). A mismatching `of "<name>"` clause is an error.
ScheduleParseResult parseSchedule(std::string_view source,
                                  const Problem& problem);

/// Serializes `schedule` with the given label; round-trips through
/// parseSchedule against the same problem.
void writeSchedule(std::ostream& os, const Schedule& schedule,
                   std::string_view label);
std::string scheduleToText(const Schedule& schedule, std::string_view label);

}  // namespace paws::io
