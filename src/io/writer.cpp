#include "io/writer.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>
#include <vector>

namespace paws::io {

namespace {

/// Watts in .paws syntax: integral milliwatt-exact decimal plus "W".
void writeWatts(std::ostream& os, Watts w) {
  os << w;  // operator<< already prints e.g. "14.9W" / "0.025W"
}

/// Mirrors the lexer's identifier rules (lexer.cpp): leading alpha/'_',
/// then alnum/'_'/'.'.
bool isPlainIdentifier(std::string_view name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) ||
        name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string nameToken(std::string_view name) {
  if (isPlainIdentifier(name)) return std::string(name);
  std::string quoted;
  quoted.reserve(name.size() + 2);
  quoted += '"';
  quoted += name;
  quoted += '"';
  return quoted;
}

void writeProblem(std::ostream& os, const Problem& problem) {
  os << "problem \"" << problem.name() << "\" {\n";
  if (problem.maxPower() != Watts::max()) {
    os << "  pmax ";
    writeWatts(os, problem.maxPower());
    os << "\n";
  }
  if (problem.minPower() > Watts::zero()) {
    os << "  pmin ";
    writeWatts(os, problem.minPower());
    os << "\n";
  }
  if (problem.backgroundPower() > Watts::zero()) {
    os << "  background ";
    writeWatts(os, problem.backgroundPower());
    os << "\n";
  }
  if (problem.battery().has_value()) {
    const BatteryTraits& traits = *problem.battery();
    os << "  battery {";
    for (const RateBand& band : traits.bands) {
      os << " rate ";
      writeWatts(os, band.threshold);
      os << " " << band.factorPermille;
    }
    if (traits.recoverablePermille > 0) {
      os << " recoverable " << traits.recoverablePermille;
    }
    if (traits.recoveryRate > Watts::zero()) {
      os << " recovery ";
      writeWatts(os, traits.recoveryRate);
    }
    os << " }\n";
  }
  for (const SystemMode& mode : problem.modes()) {
    os << "  mode " << nameToken(mode.name) << " { ceiling "
       << static_cast<int>(mode.ceiling) << "  pmax_scale " << mode.pmaxPct
       << "  pmin_scale " << mode.pminPct << " }\n";
  }
  os << "\n";
  for (ResourceId r : problem.resourceIds()) {
    os << "  resource " << nameToken(problem.resource(r).name) << "\n";
  }
  os << "\n";
  for (TaskId v : problem.taskIds()) {
    const Task& t = problem.task(v);
    os << "  task " << nameToken(t.name) << " { resource "
       << nameToken(problem.resource(t.resource).name) << "  delay "
       << t.delay.ticks() << "  power ";
    writeWatts(os, t.power);
    if (t.droppable()) {
      os << "  droppable " << static_cast<int>(t.criticality);
    }
    os << " }\n";
  }
  os << "\n";
  for (const TimingConstraint& c : problem.constraints()) {
    const char* kw =
        c.kind == TimingConstraint::Kind::kMinSeparation ? "min" : "max";
    if (c.from == kAnchorTask) {
      // Anchor-relative constraints round-trip through release/deadline.
      if (c.kind == TimingConstraint::Kind::kMinSeparation) {
        os << "  release " << nameToken(problem.task(c.to).name) << " "
           << c.separation.ticks() << "\n";
      } else {
        os << "  deadline " << nameToken(problem.task(c.to).name) << " "
           << (c.separation + problem.task(c.to).delay).ticks() << "\n";
      }
      continue;
    }
    os << "  " << kw << " " << nameToken(problem.task(c.from).name) << " -> "
       << nameToken(problem.task(c.to).name) << " " << c.separation.ticks()
       << "\n";
  }
  os << "}\n";
}

std::string problemToText(const Problem& problem) {
  std::ostringstream os;
  writeProblem(os, problem);
  return os.str();
}

void writeScheduleCsv(std::ostream& os, const Schedule& schedule) {
  const Problem& p = schedule.problem();
  std::vector<TaskId> order = p.taskIds();
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (schedule.start(a) != schedule.start(b)) {
      return schedule.start(a) < schedule.start(b);
    }
    return a < b;
  });
  os << "task,resource,start,end,power_mw,energy_mwticks\n";
  for (TaskId v : order) {
    const Task& t = p.task(v);
    os << t.name << ',' << p.resource(t.resource).name << ','
       << schedule.start(v).ticks() << ',' << schedule.end(v).ticks() << ','
       << t.power.milliwatts() << ',' << t.energy().milliwattTicks() << "\n";
  }
}

std::string scheduleToCsv(const Schedule& schedule) {
  std::ostringstream os;
  writeScheduleCsv(os, schedule);
  return os.str();
}

void writeProfileCsv(std::ostream& os, const PowerProfile& profile) {
  os << "begin,end,power_mw\n";
  for (const PowerSegment& s : profile.segments()) {
    os << s.interval.begin().ticks() << ',' << s.interval.end().ticks()
       << ',' << s.power.milliwatts() << "\n";
  }
}

std::string profileToCsv(const PowerProfile& profile) {
  std::ostringstream os;
  writeProfileCsv(os, profile);
  return os.str();
}

void writeChromeTrace(std::ostream& os, const Schedule& schedule) {
  const Problem& p = schedule.problem();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (TaskId v : p.taskIds()) {
    const Task& t = p.task(v);
    if (!first) os << ',';
    first = false;
    // tid = resource row; ts/dur in microseconds (1 tick -> 1 us keeps the
    // viewer's zoom sane for second-scale schedules).
    os << "{\"name\":\"" << t.name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << t.resource.value() + 1 << ",\"ts\":" << schedule.start(v).ticks()
       << ",\"dur\":" << t.delay.ticks() << ",\"args\":{\"power_mw\":"
       << t.power.milliwatts() << ",\"energy_mwticks\":"
       << t.energy().milliwattTicks() << "}}";
  }
  // Resource-name metadata rows.
  for (ResourceId r : p.resourceIds()) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << r.value() + 1 << ",\"args\":{\"name\":\""
       << p.resource(r).name << "\"}}";
  }
  os << "]}";
}

std::string scheduleToChromeTrace(const Schedule& schedule) {
  std::ostringstream os;
  writeChromeTrace(os, schedule);
  return os.str();
}

}  // namespace paws::io
