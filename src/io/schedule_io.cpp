#include "io/schedule_io.hpp"

#include <cerrno>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "io/lexer.hpp"
#include "io/parser.hpp"
#include "io/writer.hpp"

namespace paws::io {

ScheduleParseResult parseSchedule(std::string_view source,
                                  const Problem& problem) {
  ScheduleParseResult result;
  LexResult lexed = lex(source);
  for (const LexError& e : lexed.errors) {
    result.errors.push_back(ParseError{e.message, e.line, e.column});
  }
  if (!lexed.ok()) return result;

  const std::vector<Token>& ts = lexed.tokens;
  std::size_t pos = 0;
  const auto peek = [&]() -> const Token& { return ts[pos]; };
  const auto next = [&]() -> const Token& {
    const Token& t = ts[pos];
    if (t.kind != TokenKind::kEof) ++pos;
    return t;
  };
  const auto fail = [&](const Token& t, std::string message) {
    result.errors.push_back(ParseError{std::move(message), t.line, t.column});
  };

  const auto expectName = [&](const char* what, std::string* out) {
    if (peek().kind != TokenKind::kIdentifier &&
        peek().kind != TokenKind::kString) {
      fail(peek(), std::string("expected ") + what);
      return false;
    }
    *out = next().text;
    return true;
  };

  std::string kw;
  if (!expectName("'schedule'", &kw) || kw != "schedule") {
    if (kw != "schedule") fail(ts[0], "document must start with 'schedule'");
    return result;
  }
  if (!expectName("a schedule label", &result.label)) return result;
  if (!expectName("'of'", &kw) || kw != "of") {
    fail(peek(), "expected 'of <problem name>'");
    return result;
  }
  if (!expectName("a problem name", &result.problemName)) return result;
  if (result.problemName != problem.name()) {
    fail(peek(), "schedule is for problem '" + result.problemName +
                     "', not '" + problem.name() + "'");
    return result;
  }
  if (peek().kind != TokenKind::kLBrace) {
    fail(peek(), "expected '{'");
    return result;
  }
  next();

  std::vector<Time> starts(problem.numVertices(), Time::zero());
  std::vector<bool> assigned(problem.numVertices(), false);
  assigned[kAnchorTask.index()] = true;

  while (peek().kind != TokenKind::kRBrace &&
         peek().kind != TokenKind::kEof) {
    const Token at = peek();
    std::string item;
    if (!expectName("'at'", &item)) {
      next();
      continue;
    }
    if (item != "at") {
      fail(at, "expected 'at <task> <time>'");
      continue;
    }
    const Token nameTok = peek();
    std::string taskName;
    if (!expectName("a task name", &taskName)) continue;
    const auto id = problem.findTask(taskName);
    if (!id) {
      fail(nameTok, "unknown task '" + taskName + "'");
      continue;
    }
    if (peek().kind != TokenKind::kNumber) {
      fail(peek(), "expected a start time");
      continue;
    }
    const Token num = next();
    if (num.text.find('.') != std::string::npos) {
      fail(num, "start times are integral ticks");
      continue;
    }
    if (peek().kind == TokenKind::kIdentifier && peek().text == "s") next();
    if (assigned[id->index()]) {
      fail(nameTok, "task '" + taskName + "' assigned twice");
      continue;
    }
    errno = 0;
    const std::int64_t ticks = std::strtoll(num.text.c_str(), nullptr, 10);
    // Same range discipline as parseTicks in parser.cpp: an untrusted
    // start time must not push profile/longest-path sums near overflow.
    if (errno == ERANGE || ticks > kMaxAbsTicks || ticks < -kMaxAbsTicks) {
      fail(num, "start time '" + num.text + "' is out of range");
      continue;
    }
    assigned[id->index()] = true;
    starts[id->index()] = Time(ticks);
  }
  if (peek().kind == TokenKind::kRBrace) next();

  for (TaskId v : problem.taskIds()) {
    if (!assigned[v.index()]) {
      fail(ts.back(), "task '" + problem.task(v).name + "' has no start");
    }
  }
  if (!result.errors.empty()) return result;
  result.schedule = Schedule(&problem, std::move(starts));
  return result;
}

void writeSchedule(std::ostream& os, const Schedule& schedule,
                   std::string_view label) {
  const Problem& p = schedule.problem();
  os << "schedule \"" << label << "\" of \"" << p.name() << "\" {\n";
  for (TaskId v : p.taskIds()) {
    os << "  at " << nameToken(p.task(v).name) << " "
       << schedule.start(v).ticks() << "\n";
  }
  os << "}\n";
}

std::string scheduleToText(const Schedule& schedule, std::string_view label) {
  std::ostringstream os;
  writeSchedule(os, schedule, label);
  return os.str();
}

}  // namespace paws::io
