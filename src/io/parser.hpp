// Parser for the .paws problem-description format.
//
// Grammar (informal):
//
//   file      := problem
//   problem   := "problem" (IDENT | STRING) "{" item* "}"
//   item      := "pmax" power | "pmin" power | "background" power
//              | "resource" name
//              | "task" name "{" "resource" name "delay" dur
//                               "power" power "}"
//              | "battery" "{" ("rate" power permille
//                              | "recoverable" permille
//                              | "recovery" power)* "}"
//              | "mode" name "{" ("ceiling" int
//                                | "pmax_scale" pct
//                                | "pmin_scale" pct)* "}"
//              | "min" name "->" name dur        # min separation
//              | "max" name "->" name dur        # max separation
//              | "precedes" name "->" name [dur] # completion + lag
//              | "release" name time
//              | "deadline" name time
//              | "pin" name time
//   power     := NUMBER ("W" | "mW")             # default W
//   dur/time  := NUMBER ["s"]
//
// Declarations are order-sensitive only in that tasks/resources must be
// declared before they are referenced. All errors are collected with
// line:column positions; parsing continues past recoverable mistakes so a
// file's problems are reported in one pass.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/problem.hpp"

namespace paws::io {

struct ParseError {
  std::string message;
  int line = 1;
  int column = 1;
};

std::string format(const ParseError& error);

struct ParseResult {
  std::optional<Problem> problem;  // set when errors is empty
  std::vector<ParseError> errors;
  [[nodiscard]] bool ok() const { return problem.has_value(); }
};

// Structural limits on parsed problems (documented in docs/format.md).
// They exist so untrusted input cannot drive the downstream integer
// arithmetic (longest path distances, milliwatt-tick energies) anywhere
// near int64 overflow, nor allocate unbounded graphs: the schedulers are
// super-linear in tasks, so anything over these caps could never be
// scheduled anyway.
inline constexpr std::size_t kMaxTasks = 4096;
inline constexpr std::size_t kMaxResources = 1024;
inline constexpr std::size_t kMaxConstraints = 65536;
inline constexpr std::size_t kMaxParseErrors = 100;
/// Largest |ticks| accepted for any delay/separation/time literal.
inline constexpr std::int64_t kMaxAbsTicks = 1'000'000'000'000;  // 1e12
/// Largest |watts| accepted for any power literal (1 GW).
inline constexpr double kMaxAbsWatts = 1.0e9;
/// Most rate-capacity bands a battery declaration may carry.
inline constexpr std::size_t kMaxRateBands = 8;
/// Most system modes a problem may declare.
inline constexpr std::size_t kMaxModes = 8;

/// Parses a .paws document.
ParseResult parseProblem(std::string_view source);

/// Convenience: reads and parses a file; I/O failures surface as a parse
/// error at 1:1.
ParseResult parseProblemFile(const std::string& path);

}  // namespace paws::io
