// Parser for the .paws problem-description format.
//
// Grammar (informal):
//
//   file      := problem
//   problem   := "problem" (IDENT | STRING) "{" item* "}"
//   item      := "pmax" power | "pmin" power | "background" power
//              | "resource" name
//              | "task" name "{" "resource" name "delay" dur
//                               "power" power "}"
//              | "min" name "->" name dur        # min separation
//              | "max" name "->" name dur        # max separation
//              | "precedes" name "->" name [dur] # completion + lag
//              | "release" name time
//              | "deadline" name time
//              | "pin" name time
//   power     := NUMBER ("W" | "mW")             # default W
//   dur/time  := NUMBER ["s"]
//
// Declarations are order-sensitive only in that tasks/resources must be
// declared before they are referenced. All errors are collected with
// line:column positions; parsing continues past recoverable mistakes so a
// file's problems are reported in one pass.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/problem.hpp"

namespace paws::io {

struct ParseError {
  std::string message;
  int line = 1;
  int column = 1;
};

std::string format(const ParseError& error);

struct ParseResult {
  std::optional<Problem> problem;  // set when errors is empty
  std::vector<ParseError> errors;
  [[nodiscard]] bool ok() const { return problem.has_value(); }
};

/// Parses a .paws document.
ParseResult parseProblem(std::string_view source);

/// Convenience: reads and parses a file; I/O failures surface as a parse
/// error at 1:1.
ParseResult parseProblemFile(const std::string& path);

}  // namespace paws::io
