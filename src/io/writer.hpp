// Writers: Problem -> .paws text (round-trips through the parser) and
// Schedule -> CSV for external analysis/plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "model/problem.hpp"
#include "sched/schedule.hpp"

namespace paws::io {

/// `name` spelled so the lexer reads back exactly this name: bare when it
/// is a plain identifier, quoted otherwise. Names containing '"' or a
/// newline are not representable in .paws (strings have no escapes).
std::string nameToken(std::string_view name);

/// Serializes `problem` in .paws syntax. parseProblem(writeProblem(p))
/// reconstructs an equivalent problem (same tasks, resources, constraints
/// and power limits), and re-serializing that reconstruction yields the
/// same text (the writer output is a parse/print fixed point).
void writeProblem(std::ostream& os, const Problem& problem);
std::string problemToText(const Problem& problem);

/// CSV: task,resource,start,end,power_mw,energy_mwticks — one row per task
/// in start order.
void writeScheduleCsv(std::ostream& os, const Schedule& schedule);
std::string scheduleToCsv(const Schedule& schedule);

/// CSV of the power profile: begin,end,power_mw — one row per constant
/// segment, for external plotting of the power view.
void writeProfileCsv(std::ostream& os, const PowerProfile& profile);
std::string profileToCsv(const PowerProfile& profile);

/// Chrome-tracing JSON (chrome://tracing, Perfetto): one complete event
/// ("ph":"X") per task, one row per resource, power in the event args —
/// the schedule opens in any trace viewer.
void writeChromeTrace(std::ostream& os, const Schedule& schedule);
std::string scheduleToChromeTrace(const Schedule& schedule);

}  // namespace paws::io
