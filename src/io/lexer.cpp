#include "io/lexer.hpp"

#include <cctype>

namespace paws::io {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

LexResult lex(std::string_view source) {
  LexResult result;
  if (source.size() > kMaxSourceBytes) {
    result.errors.push_back(LexError{
        "input exceeds " + std::to_string(kMaxSourceBytes) + " bytes", 1, 1});
    result.tokens.push_back(Token{TokenKind::kEof, "", 1, 1});
    return result;
  }
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  // Oversized tokens / token floods abort the scan with one structured
  // error; the truncated token list still ends in kEof so a parser that
  // ignores lex errors cannot run off the end.
  bool overflowed = false;
  const auto tokenBudgetOk = [&]() {
    if (result.tokens.size() < kMaxTokens) return true;
    result.errors.push_back(LexError{
        "input exceeds " + std::to_string(kMaxTokens) + " tokens", line,
        column});
    overflowed = true;
    return false;
  };
  const auto tokenLengthOk = [&](const std::string& text, int tline,
                                 int tcol) {
    if (text.size() <= kMaxTokenLength) return true;
    result.errors.push_back(LexError{
        "token exceeds " + std::to_string(kMaxTokenLength) + " characters",
        tline, tcol});
    overflowed = true;
    return false;
  };

  const auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < source.size(); ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < source.size() && !overflowed) {
    // A flood of garbage bytes must not become a flood of allocations:
    // past the error cap the rest of the input is not worth diagnosing.
    if (result.errors.size() >= kMaxLexErrors) {
      result.errors.push_back(
          LexError{"too many lexical errors; giving up", line, column});
      break;
    }
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }

    const int tline = line, tcol = column;
    if (!tokenBudgetOk()) break;
    if (c == '{') {
      result.tokens.push_back(Token{TokenKind::kLBrace, "{", tline, tcol});
      advance();
      continue;
    }
    if (c == '}') {
      result.tokens.push_back(Token{TokenKind::kRBrace, "}", tline, tcol});
      advance();
      continue;
    }
    if (c == '-' && i + 1 < source.size() && source[i + 1] == '>') {
      result.tokens.push_back(Token{TokenKind::kArrow, "->", tline, tcol});
      advance(2);
      continue;
    }
    if (c == '"') {
      advance();
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '"') {
          closed = true;
          advance();
          break;
        }
        if (source[i] == '\n') break;  // strings do not span lines
        text += source[i];
        advance();
      }
      if (!closed) {
        result.errors.push_back(LexError{"unterminated string", tline, tcol});
        continue;
      }
      if (!tokenLengthOk(text, tline, tcol)) break;
      result.tokens.push_back(
          Token{TokenKind::kString, std::move(text), tline, tcol});
      continue;
    }
    if (isDigit(c) || (c == '-' && i + 1 < source.size() &&
                       isDigit(source[i + 1]))) {
      std::string text(1, c);
      advance();
      bool seenDot = false;
      while (i < source.size() &&
             (isDigit(source[i]) || (source[i] == '.' && !seenDot))) {
        seenDot = seenDot || source[i] == '.';
        text += source[i];
        advance();
      }
      if (!tokenLengthOk(text, tline, tcol)) break;
      result.tokens.push_back(
          Token{TokenKind::kNumber, std::move(text), tline, tcol});
      continue;
    }
    if (isIdentStart(c)) {
      std::string text;
      while (i < source.size() && isIdentBody(source[i])) {
        text += source[i];
        advance();
      }
      if (!tokenLengthOk(text, tline, tcol)) break;
      result.tokens.push_back(
          Token{TokenKind::kIdentifier, std::move(text), tline, tcol});
      continue;
    }

    result.errors.push_back(LexError{
        std::string("unexpected character '") + c + "'", tline, tcol});
    advance();
  }

  result.tokens.push_back(Token{TokenKind::kEof, "", line, column});
  return result;
}

}  // namespace paws::io
