#include "io/lexer.hpp"

#include <cctype>

namespace paws::io {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

LexResult lex(std::string_view source) {
  LexResult result;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  const auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < source.size(); ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }

    const int tline = line, tcol = column;
    if (c == '{') {
      result.tokens.push_back(Token{TokenKind::kLBrace, "{", tline, tcol});
      advance();
      continue;
    }
    if (c == '}') {
      result.tokens.push_back(Token{TokenKind::kRBrace, "}", tline, tcol});
      advance();
      continue;
    }
    if (c == '-' && i + 1 < source.size() && source[i + 1] == '>') {
      result.tokens.push_back(Token{TokenKind::kArrow, "->", tline, tcol});
      advance(2);
      continue;
    }
    if (c == '"') {
      advance();
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '"') {
          closed = true;
          advance();
          break;
        }
        if (source[i] == '\n') break;  // strings do not span lines
        text += source[i];
        advance();
      }
      if (!closed) {
        result.errors.push_back(LexError{"unterminated string", tline, tcol});
        continue;
      }
      result.tokens.push_back(
          Token{TokenKind::kString, std::move(text), tline, tcol});
      continue;
    }
    if (isDigit(c) || (c == '-' && i + 1 < source.size() &&
                       isDigit(source[i + 1]))) {
      std::string text(1, c);
      advance();
      bool seenDot = false;
      while (i < source.size() &&
             (isDigit(source[i]) || (source[i] == '.' && !seenDot))) {
        seenDot = seenDot || source[i] == '.';
        text += source[i];
        advance();
      }
      result.tokens.push_back(
          Token{TokenKind::kNumber, std::move(text), tline, tcol});
      continue;
    }
    if (isIdentStart(c)) {
      std::string text;
      while (i < source.size() && isIdentBody(source[i])) {
        text += source[i];
        advance();
      }
      result.tokens.push_back(
          Token{TokenKind::kIdentifier, std::move(text), tline, tcol});
      continue;
    }

    result.errors.push_back(LexError{
        std::string("unexpected character '") + c + "'", tline, tcol});
    advance();
  }

  result.tokens.push_back(Token{TokenKind::kEof, "", line, column});
  return result;
}

}  // namespace paws::io
