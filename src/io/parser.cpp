#include "io/parser.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/check.hpp"
#include "io/lexer.hpp"

namespace paws::io {

std::string format(const ParseError& error) {
  std::ostringstream os;
  os << error.line << ':' << error.column << ": " << error.message;
  return os.str();
}

namespace {

/// Recursive-descent parser over the token stream. Errors are collected;
/// panic recovery skips to the next plausible item start.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult run() {
    ParseResult result;
    parseFile();
    result.errors = std::move(errors_);
    if (result.errors.empty()) result.problem = std::move(problem_);
    return result;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& next() {
    const Token& t = tokens_[pos_];
    if (tokens_[pos_].kind != TokenKind::kEof) ++pos_;
    return t;
  }
  bool at(TokenKind k) const { return peek().kind == k; }

  void error(const Token& t, std::string message) {
    if (fatal_) return;
    errors_.push_back(ParseError{std::move(message), t.line, t.column});
    if (errors_.size() >= kMaxParseErrors) {
      errors_.push_back(
          ParseError{"too many parse errors; giving up", t.line, t.column});
      fatal_ = true;
    }
  }

  /// Irrecoverable structural violation: report and stop consuming input.
  void fatal(const Token& t, std::string message) {
    error(t, std::move(message));
    fatal_ = true;
  }

  bool expectIdent(const char* what, std::string* out) {
    if (!at(TokenKind::kIdentifier) && !at(TokenKind::kString)) {
      error(peek(), std::string("expected ") + what + ", got '" +
                        peek().text + "'");
      return false;
    }
    *out = next().text;
    return true;
  }

  bool expectKeyword(const char* kw) {
    if (at(TokenKind::kIdentifier) && peek().text == kw) {
      next();
      return true;
    }
    error(peek(), std::string("expected '") + kw + "'");
    return false;
  }

  bool expect(TokenKind kind, const char* what) {
    if (at(kind)) {
      next();
      return true;
    }
    error(peek(), std::string("expected ") + what);
    return false;
  }

  /// NUMBER with optional W/mW suffix; defaults to watts.
  bool parsePower(Watts* out) {
    if (!at(TokenKind::kNumber)) {
      error(peek(), "expected a power value");
      return false;
    }
    const Token num = next();
    double value = std::strtod(num.text.c_str(), nullptr);
    if (at(TokenKind::kIdentifier) &&
        (peek().text == "W" || peek().text == "mW")) {
      if (next().text == "mW") value /= 1000.0;
    }
    // Range-check before Watts::fromWatts: its double->int64 cast is UB
    // outside int64 range, and anything past kMaxAbsWatts would overflow
    // the milliwatt-tick energy arithmetic downstream regardless.
    if (!std::isfinite(value) || value > kMaxAbsWatts ||
        value < -kMaxAbsWatts) {
      error(num, "power value '" + num.text + "' is out of range");
      return false;
    }
    *out = Watts::fromWatts(value);
    return true;
  }

  /// NUMBER with optional 's' suffix; must be an integer tick count.
  bool parseTicks(std::int64_t* out) {
    if (!at(TokenKind::kNumber)) {
      error(peek(), "expected a time value (integer ticks)");
      return false;
    }
    const Token num = next();
    if (num.text.find('.') != std::string::npos) {
      error(num, "time values must be integral ticks, got '" + num.text + "'");
      return false;
    }
    errno = 0;
    const std::int64_t ticks = std::strtoll(num.text.c_str(), nullptr, 10);
    if (at(TokenKind::kIdentifier) && peek().text == "s") next();
    // strtoll saturates on overflow (ERANGE); the explicit cap keeps every
    // downstream Time/Duration sum far away from int64 overflow.
    if (errno == ERANGE || ticks > kMaxAbsTicks || ticks < -kMaxAbsTicks) {
      error(num, "time value '" + num.text + "' is out of range");
      return false;
    }
    *out = ticks;
    return true;
  }

  /// Bare integer NUMBER (no unit suffix).
  bool parseInteger(const char* what, std::int64_t* out) {
    if (!at(TokenKind::kNumber)) {
      error(peek(), std::string("expected ") + what);
      return false;
    }
    const Token num = next();
    if (num.text.find('.') != std::string::npos) {
      error(num, std::string(what) + " must be integral, got '" + num.text +
                     "'");
      return false;
    }
    errno = 0;
    const std::int64_t value = std::strtoll(num.text.c_str(), nullptr, 10);
    if (errno == ERANGE || value > kMaxAbsTicks || value < -kMaxAbsTicks) {
      error(num, "value '" + num.text + "' is out of range");
      return false;
    }
    *out = value;
    return true;
  }

  bool lookupTask(const Token& where, const std::string& name, TaskId* out) {
    const auto id = problem_.findTask(name);
    if (!id) {
      error(where, "unknown task '" + name + "'");
      return false;
    }
    *out = *id;
    return true;
  }

  /// name "->" name; returns both ends.
  bool parseTaskPair(TaskId* from, TaskId* to) {
    const Token first = peek();
    std::string a;
    if (!expectIdent("a task name", &a)) return false;
    if (!expect(TokenKind::kArrow, "'->'")) return false;
    const Token second = peek();
    std::string b;
    if (!expectIdent("a task name", &b)) return false;
    return lookupTask(first, a, from) && lookupTask(second, b, to);
  }

  /// Caps the declared constraint count (each keyword adds at most two).
  bool constraintBudgetOk(const Token& at) {
    if (problem_.constraints().size() < kMaxConstraints) return true;
    fatal(at, "too many constraints (limit " +
                  std::to_string(kMaxConstraints) + ")");
    return false;
  }

  void skipToNextItem() {
    while (!at(TokenKind::kEof) && !at(TokenKind::kRBrace)) {
      if (at(TokenKind::kIdentifier)) {
        const std::string& t = peek().text;
        if (t == "task" || t == "resource" || t == "min" || t == "max" ||
            t == "precedes" || t == "release" || t == "deadline" ||
            t == "pin" || t == "pmax" || t == "pmin" || t == "background" ||
            t == "battery" || t == "mode") {
          return;
        }
      }
      next();
    }
  }

  void parseTask() {
    std::string name;
    if (!expectIdent("a task name", &name)) return;
    if (!expect(TokenKind::kLBrace, "'{'")) return;
    std::optional<ResourceId> resource;
    std::optional<Duration> delay;
    std::optional<Watts> power;
    std::uint8_t criticality = 0;
    while (!at(TokenKind::kRBrace) && !at(TokenKind::kEof) && !fatal_) {
      const Token key = peek();
      std::string kw;
      if (!expectIdent("a task attribute", &kw)) {
        next();
        continue;
      }
      if (kw == "resource") {
        std::string rname;
        if (!expectIdent("a resource name", &rname)) continue;
        const auto rid = problem_.findResource(rname);
        if (!rid) {
          error(key, "unknown resource '" + rname + "'");
          continue;
        }
        resource = *rid;
      } else if (kw == "delay") {
        std::int64_t ticks = 0;
        if (parseTicks(&ticks)) delay = Duration(ticks);
      } else if (kw == "power") {
        Watts w;
        if (parsePower(&w)) power = w;
      } else if (kw == "droppable") {
        // Optional shed rank; a bare `droppable` means rank 1.
        std::int64_t rank = 1;
        if (at(TokenKind::kNumber) && !parseTicks(&rank)) continue;
        if (rank < 1 || rank > 255) {
          error(key, "droppable rank must be in [1, 255]");
          continue;
        }
        criticality = static_cast<std::uint8_t>(rank);
      } else {
        error(key, "unknown task attribute '" + kw + "'");
      }
    }
    expect(TokenKind::kRBrace, "'}'");
    if (!resource || !delay || !power) {
      error(peek(), "task '" + name +
                        "' needs resource, delay and power attributes");
      return;
    }
    if (delay->ticks() <= 0) {
      error(peek(), "task '" + name + "' needs a positive delay");
      return;
    }
    if (problem_.findTask(name)) {
      error(peek(), "duplicate task '" + name + "'");
      return;
    }
    if (problem_.numVertices() - 1 >= kMaxTasks) {
      fatal(peek(), "too many tasks (limit " + std::to_string(kMaxTasks) +
                        ")");
      return;
    }
    const TaskId id = problem_.addTask(name, *delay, *power, *resource);
    if (criticality > 0) problem_.setCriticality(id, criticality);
  }

  /// battery { rate POWER PERMILLE ... recoverable PERMILLE recovery POWER }
  ///
  /// Each `rate` pair declares one rate-capacity band: draws strictly above
  /// the threshold drain factor/1000 times the nominal charge. Bands must be
  /// listed with strictly increasing thresholds.
  void parseBattery(const Token& key) {
    if (!expect(TokenKind::kLBrace, "'{'")) return;
    BatteryTraits traits;
    bool bad = false;
    while (!at(TokenKind::kRBrace) && !at(TokenKind::kEof) && !fatal_) {
      const Token attr = peek();
      std::string kw;
      if (!expectIdent("a battery attribute", &kw)) {
        next();
        continue;
      }
      if (kw == "rate") {
        Watts threshold;
        if (!parsePower(&threshold)) continue;
        std::int64_t factor = 0;
        if (!parseInteger("a permille factor", &factor)) continue;
        if (threshold < Watts::zero()) {
          error(attr, "rate band threshold must be >= 0");
          bad = true;
          continue;
        }
        if (factor < 1000 || factor > 1'000'000) {
          error(attr, "rate factor must be in [1000, 1000000] permille");
          bad = true;
          continue;
        }
        if (traits.bands.size() >= kMaxRateBands) {
          error(attr, "too many rate bands (limit " +
                          std::to_string(kMaxRateBands) + ")");
          bad = true;
          continue;
        }
        if (!traits.bands.empty() &&
            threshold <= traits.bands.back().threshold) {
          error(attr, "rate band thresholds must strictly increase");
          bad = true;
          continue;
        }
        traits.bands.push_back(RateBand{threshold, factor});
      } else if (kw == "recoverable") {
        std::int64_t permille = 0;
        if (!parseInteger("a permille fraction", &permille)) continue;
        if (permille < 0 || permille > 1000) {
          error(attr, "recoverable fraction must be in [0, 1000] permille");
          bad = true;
          continue;
        }
        traits.recoverablePermille = permille;
      } else if (kw == "recovery") {
        Watts w;
        if (!parsePower(&w)) continue;
        if (w < Watts::zero()) {
          error(attr, "recovery rate must be >= 0");
          bad = true;
          continue;
        }
        traits.recoveryRate = w;
      } else {
        error(attr, "unknown battery attribute '" + kw + "'");
      }
    }
    expect(TokenKind::kRBrace, "'}'");
    if (bad) return;
    if (problem_.battery().has_value()) {
      error(key, "duplicate battery declaration");
      return;
    }
    problem_.setBattery(std::move(traits));
  }

  /// mode NAME { ceiling INT pmax_scale PCT pmin_scale PCT }
  ///
  /// Modes form the escalation ladder in declaration order; ceilings must
  /// not increase down the ladder (checked by Problem::validate, reported
  /// to the caller alongside other semantic issues).
  void parseMode(const Token& key) {
    std::string name;
    if (!expectIdent("a mode name", &name)) return;
    if (!expect(TokenKind::kLBrace, "'{'")) return;
    SystemMode mode;
    mode.name = name;
    bool bad = false;
    while (!at(TokenKind::kRBrace) && !at(TokenKind::kEof) && !fatal_) {
      const Token attr = peek();
      std::string kw;
      if (!expectIdent("a mode attribute", &kw)) {
        next();
        continue;
      }
      std::int64_t value = 0;
      if (kw == "ceiling") {
        if (!parseInteger("a criticality ceiling", &value)) continue;
        if (value < 0 || value > 255) {
          error(attr, "mode ceiling must be in [0, 255]");
          bad = true;
          continue;
        }
        mode.ceiling = static_cast<std::uint8_t>(value);
      } else if (kw == "pmax_scale" || kw == "pmin_scale") {
        if (!parseInteger("a percentage", &value)) continue;
        if (value < 0 || value > 100) {
          error(attr, "mode power scale must be in [0, 100] percent");
          bad = true;
          continue;
        }
        if (kw == "pmax_scale") {
          mode.pmaxPct = static_cast<std::uint32_t>(value);
        } else {
          mode.pminPct = static_cast<std::uint32_t>(value);
        }
      } else {
        error(attr, "unknown mode attribute '" + kw + "'");
      }
    }
    expect(TokenKind::kRBrace, "'}'");
    if (bad) return;
    for (const SystemMode& m : problem_.modes()) {
      if (m.name == mode.name) {
        error(key, "duplicate mode '" + name + "'");
        return;
      }
    }
    if (problem_.modes().size() >= kMaxModes) {
      fatal(key, "too many modes (limit " + std::to_string(kMaxModes) + ")");
      return;
    }
    problem_.addMode(std::move(mode));
  }

  void parseItem() {
    const Token key = peek();
    std::string kw;
    if (!expectIdent("an item", &kw)) {
      next();
      return;
    }
    if (kw == "pmax") {
      Watts w;
      if (parsePower(&w)) problem_.setMaxPower(w);
    } else if (kw == "pmin") {
      Watts w;
      if (parsePower(&w)) problem_.setMinPower(w);
    } else if (kw == "background") {
      Watts w;
      if (parsePower(&w)) problem_.setBackgroundPower(w);
    } else if (kw == "resource") {
      std::string name;
      if (!expectIdent("a resource name", &name)) return;
      if (problem_.findResource(name)) {
        error(key, "duplicate resource '" + name + "'");
        return;
      }
      if (problem_.numResources() >= kMaxResources) {
        fatal(key, "too many resources (limit " +
                       std::to_string(kMaxResources) + ")");
        return;
      }
      problem_.addResource(name);
    } else if (kw == "task") {
      parseTask();
    } else if (kw == "battery") {
      parseBattery(key);
    } else if (kw == "mode") {
      parseMode(key);
    } else if (kw == "min" || kw == "max") {
      if (!constraintBudgetOk(key)) return;
      TaskId from, to;
      if (!parseTaskPair(&from, &to)) {
        skipToNextItem();
        return;
      }
      std::int64_t ticks = 0;
      if (!parseTicks(&ticks)) return;
      if (kw == "min") {
        problem_.minSeparation(from, to, Duration(ticks));
      } else {
        problem_.maxSeparation(from, to, Duration(ticks));
      }
    } else if (kw == "precedes") {
      if (!constraintBudgetOk(key)) return;
      TaskId from, to;
      if (!parseTaskPair(&from, &to)) {
        skipToNextItem();
        return;
      }
      std::int64_t lag = 0;
      if (at(TokenKind::kNumber)) {
        if (!parseTicks(&lag)) return;
      }
      problem_.precedes(from, to, Duration(lag));
    } else if (kw == "release" || kw == "deadline" || kw == "pin") {
      if (!constraintBudgetOk(key)) return;
      const Token where = peek();
      std::string name;
      if (!expectIdent("a task name", &name)) return;
      TaskId v;
      if (!lookupTask(where, name, &v)) {
        skipToNextItem();
        return;
      }
      std::int64_t ticks = 0;
      if (!parseTicks(&ticks)) return;
      if (kw == "release") {
        problem_.release(v, Time(ticks));
      } else if (kw == "deadline") {
        problem_.deadline(v, Time(ticks));
      } else {
        problem_.pin(v, Time(ticks));
      }
    } else {
      error(key, "unknown item '" + kw + "'");
      skipToNextItem();
    }
  }

  void parseFile() {
    if (!expectKeyword("problem")) return;
    std::string name;
    if (!expectIdent("a problem name", &name)) return;
    problem_.setName(name);
    if (!expect(TokenKind::kLBrace, "'{'")) return;
    while (!at(TokenKind::kRBrace) && !at(TokenKind::kEof) && !fatal_) {
      parseItem();
    }
    if (fatal_) return;
    expect(TokenKind::kRBrace, "'}'");
    if (!at(TokenKind::kEof)) {
      error(peek(), "trailing content after problem body");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Problem problem_;
  std::vector<ParseError> errors_;
  bool fatal_ = false;
};

}  // namespace

ParseResult parseProblem(std::string_view source) {
  LexResult lexed = lex(source);
  if (!lexed.ok()) {
    ParseResult result;
    for (const LexError& e : lexed.errors) {
      result.errors.push_back(ParseError{e.message, e.line, e.column});
    }
    return result;
  }
  // Last line of defense: a Problem precondition the item-level validation
  // missed must surface as a structured error, never as an escaping
  // exception — parse errors on untrusted bytes are data, not bugs.
  try {
    return Parser(std::move(lexed.tokens)).run();
  } catch (const CheckError& e) {
    ParseResult result;
    result.errors.push_back(
        ParseError{std::string("invalid problem: ") + e.what(), 1, 1});
    return result;
  }
}

ParseResult parseProblemFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ParseResult result;
    result.errors.push_back(ParseError{"cannot open file: " + path, 1, 1});
    return result;
  }
  // Reject oversized files by size before slurping them into memory.
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size >= 0 && static_cast<std::uint64_t>(size) > kMaxSourceBytes) {
    ParseResult result;
    result.errors.push_back(ParseError{
        "file exceeds " + std::to_string(kMaxSourceBytes) + " bytes: " + path,
        1, 1});
    return result;
  }
  in.seekg(0, std::ios::beg);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseProblem(buffer.str());
}

}  // namespace paws::io
