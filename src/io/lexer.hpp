// Lexer for the .paws problem-description format.
//
// Token kinds are deliberately few: identifiers/keywords, quoted strings,
// numbers (integer or decimal, with an optional unit suffix glued on by the
// parser), punctuation ({ } ->), and end-of-file. '#' starts a comment that
// runs to end of line. Every token carries its 1-based line and column for
// parser diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paws::io {

enum class TokenKind : std::uint8_t {
  kIdentifier,  // problem, task, resource, min, names, unit suffixes...
  kString,      // "quoted name"
  kNumber,      // 42, 14.9, -5
  kLBrace,
  kRBrace,
  kArrow,  // ->
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;  // raw text (without quotes for strings)
  int line = 1;
  int column = 1;
};

struct LexError {
  std::string message;
  int line = 1;
  int column = 1;
};

struct LexResult {
  std::vector<Token> tokens;  // always ends with kEof on success
  std::vector<LexError> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

// Input limits (documented in docs/format.md). Untrusted sources hit a
// structured LexError instead of unbounded allocation: the largest real
// instance in this repo is ~4 KB, so these bounds are ~3 orders of
// magnitude of headroom, not a constraint anyone will meet honestly.
inline constexpr std::size_t kMaxSourceBytes = 8u << 20;  // 8 MiB
inline constexpr std::size_t kMaxTokenLength = 4096;      // per token text
inline constexpr std::size_t kMaxTokens = 1u << 20;       // ~1M tokens
inline constexpr std::size_t kMaxLexErrors = 64;  // then the scan stops

LexResult lex(std::string_view source);

}  // namespace paws::io
