// Lexer for the .paws problem-description format.
//
// Token kinds are deliberately few: identifiers/keywords, quoted strings,
// numbers (integer or decimal, with an optional unit suffix glued on by the
// parser), punctuation ({ } ->), and end-of-file. '#' starts a comment that
// runs to end of line. Every token carries its 1-based line and column for
// parser diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paws::io {

enum class TokenKind : std::uint8_t {
  kIdentifier,  // problem, task, resource, min, names, unit suffixes...
  kString,      // "quoted name"
  kNumber,      // 42, 14.9, -5
  kLBrace,
  kRBrace,
  kArrow,  // ->
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;  // raw text (without quotes for strings)
  int line = 1;
  int column = 1;
};

struct LexError {
  std::string message;
  int line = 1;
  int column = 1;
};

struct LexResult {
  std::vector<Token> tokens;  // always ends with kEof on success
  std::vector<LexError> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

LexResult lex(std::string_view source);

}  // namespace paws::io
