#include "guard/budget.hpp"

namespace paws::guard {

const char* toString(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::optional<StopReason> stopReasonFromString(std::string_view text) {
  if (text == "none") return StopReason::kNone;
  if (text == "deadline") return StopReason::kDeadline;
  if (text == "cancelled") return StopReason::kCancelled;
  return std::nullopt;
}

RunBudget RunBudget::resolved(std::chrono::steady_clock::time_point now) const {
  RunBudget out = *this;
  if (out.timeout.has_value()) {
    const auto fromTimeout = now + *out.timeout;
    if (!out.deadlineAt.has_value() || fromTimeout < *out.deadlineAt) {
      out.deadlineAt = fromTimeout;
    }
    out.timeout.reset();
  }
  return out;
}

void RunBudget::inheritFrom(const RunBudget& parent) {
  if (!timeout.has_value() && !deadlineAt.has_value()) {
    timeout = parent.timeout;
    deadlineAt = parent.deadlineAt;
  }
  if (!cancel.connected()) cancel = parent.cancel;
}

RunGuard::RunGuard(const RunBudget& budget, std::uint32_t stride)
    : cancel_(budget.cancel), stride_(stride == 0 ? 1 : stride) {
  RunBudget pinned = budget.timeout.has_value() ? budget.resolved() : budget;
  deadline_ = pinned.deadlineAt;
  active_ = deadline_.has_value() || cancel_.connected();
}

StopReason RunGuard::check() {
  if (!active_ || reason_ != StopReason::kNone) return reason_;
  if (cancel_.cancelled()) {
    reason_ = StopReason::kCancelled;
  } else if (deadline_.has_value() &&
             std::chrono::steady_clock::now() >= *deadline_) {
    reason_ = StopReason::kDeadline;
  }
  return reason_;
}

}  // namespace paws::guard
