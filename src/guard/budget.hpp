// RunBudget + RunGuard — wall-clock deadlines for scheduling runs.
//
// A RunBudget describes how long a run may take: a relative timeout, an
// absolute deadline, a CancelToken, or any combination. Scheduler option
// structs carry one (like obs::ObsContext) and nested schedulers inherit
// it with inheritFrom(), so the whole pipeline shares a single clock.
//
// The relative→absolute conversion happens exactly once, at the
// outermost entry point (resolve()): from then on everything compares
// against the same steady_clock time_point, so a timeout of 50 ms means
// 50 ms for the *request*, not 50 ms per nested stage.
//
// RunGuard is the polling side. Hot loops call poll(), which only
// touches the clock every `stride` calls (steady_clock::now() is tens of
// nanoseconds — fine per chunk, too hot per search node); coarse
// boundaries call check() for an immediate answer. Both latch the first
// stop reason, and an inactive guard costs a single branch per call so
// the no-deadline path stays byte-identical to a build without guards.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string_view>

#include "guard/cancel.hpp"

namespace paws::guard {

/// Why a guarded run stopped early. kNone means it ran to completion.
enum class StopReason : std::uint8_t {
  kNone = 0,
  kDeadline = 1,
  kCancelled = 2,
};

[[nodiscard]] const char* toString(StopReason reason);

/// Inverse of toString(StopReason); nullopt for unknown text. Used by the
/// run-report parser (obs/report.hpp) to round-trip the stop reason.
[[nodiscard]] std::optional<StopReason> stopReasonFromString(
    std::string_view text);

/// Limits for one scheduling run. Default-constructed = unlimited.
struct RunBudget {
  /// Relative wall-clock limit; resolve() turns it into deadlineAt.
  std::optional<std::chrono::milliseconds> timeout;
  /// Absolute deadline. Takes precedence over `timeout` if both are set
  /// and earlier; resolve() keeps the sooner of the two.
  std::optional<std::chrono::steady_clock::time_point> deadlineAt;
  /// Cooperative cancellation; default token never fires.
  CancelToken cancel;

  /// True when any limit is configured (the clean path checks this once).
  [[nodiscard]] bool active() const {
    return timeout.has_value() || deadlineAt.has_value() || cancel.connected();
  }

  /// Pin the relative timeout to an absolute deadline, measured from
  /// `now`. Call once at the outermost scheduler entry; pass the result
  /// to nested stages so they share the clock. Idempotent afterwards.
  [[nodiscard]] RunBudget resolved(
      std::chrono::steady_clock::time_point now =
          std::chrono::steady_clock::now()) const;

  /// Adopt the parent's limits when this budget has none set (mirrors
  /// obs::ObsContext::inheritFrom for nested option structs).
  void inheritFrom(const RunBudget& parent);
};

/// Poll-side view of a resolved RunBudget. Cheap to construct per worker;
/// each worker keeps its own stride counter so polling needs no sharing.
class RunGuard {
 public:
  /// `budget` should already be resolved(); an unresolved relative
  /// timeout is resolved here as a fallback. `stride` is how many poll()
  /// calls elapse between clock reads (1 = every call).
  explicit RunGuard(const RunBudget& budget, std::uint32_t stride = 256);

  /// Inactive guards never stop anything and cost one branch per poll.
  [[nodiscard]] bool active() const { return active_; }

  /// Strided check for hot loops: reads the clock every `stride` calls.
  /// Returns the latched reason (kNone while the run may continue).
  StopReason poll() {
    if (!active_ || reason_ != StopReason::kNone) return reason_;
    if (++sinceCheck_ < stride_) return StopReason::kNone;
    sinceCheck_ = 0;
    return check();
  }

  /// Immediate check for coarse boundaries (pass/trial/chunk edges).
  StopReason check();

  /// The latched stop reason; never reverts to kNone once set.
  [[nodiscard]] StopReason reason() const { return reason_; }

 private:
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  CancelToken cancel_;
  std::uint32_t stride_ = 256;
  std::uint32_t sinceCheck_ = 0;
  bool active_ = false;
  StopReason reason_ = StopReason::kNone;
};

}  // namespace paws::guard
