// Cooperative cancellation for scheduling runs.
//
// A CancelSource owns the cancellation flag; CancelTokens are cheap,
// copyable views of it that schedulers and pool workers poll at safe
// points (node expansions, chunk boundaries, pass boundaries). Dropping
// the source never invalidates outstanding tokens — the flag is shared —
// and a default-constructed token is permanently "not cancelled", so the
// clean path pays exactly one null check per poll.
//
// Cancellation is strictly cooperative: nothing is interrupted mid-
// mutation. Every scheduler unwinds through its existing trail /
// ProfileEngine restore machinery before returning, so a cancelled run
// leaves its graph and profile exactly as consistent as a failed one.
#pragma once

#include <atomic>
#include <memory>

namespace paws::guard {

class CancelSource;

/// Read-only view of a cancellation flag. Copyable, thread-safe, and
/// valid for as long as any source or token referencing the flag lives.
class CancelToken {
 public:
  /// A token that can never be cancelled (the clean fast path).
  CancelToken() = default;

  [[nodiscard]] bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// True when this token is connected to a source (cancellable at all).
  [[nodiscard]] bool connected() const { return flag_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Owner side: create one per request, hand token() to the run, call
/// cancel() from any thread to stop it at the next safe point.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace paws::guard
